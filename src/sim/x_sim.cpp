#include "sim/x_sim.hpp"

#include <stdexcept>

#include "netlist/topo.hpp"

namespace cl::sim {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

char trit_char(Trit t) {
  switch (t) {
    case Trit::Zero: return '0';
    case Trit::One: return '1';
    case Trit::X: return 'x';
  }
  return '?';
}

Trit trit_not(Trit a) {
  if (a == Trit::X) return Trit::X;
  return a == Trit::Zero ? Trit::One : Trit::Zero;
}

Trit trit_and(Trit a, Trit b) {
  if (a == Trit::Zero || b == Trit::Zero) return Trit::Zero;
  if (a == Trit::X || b == Trit::X) return Trit::X;
  return Trit::One;
}

Trit trit_or(Trit a, Trit b) {
  if (a == Trit::One || b == Trit::One) return Trit::One;
  if (a == Trit::X || b == Trit::X) return Trit::X;
  return Trit::Zero;
}

Trit trit_xor(Trit a, Trit b) {
  if (a == Trit::X || b == Trit::X) return Trit::X;
  return (a == b) ? Trit::Zero : Trit::One;
}

Trit trit_mux(Trit sel, Trit a, Trit b) {
  if (sel == Trit::Zero) return a;
  if (sel == Trit::One) return b;
  // Unknown select: defined only if both data inputs agree.
  return (a == b) ? a : Trit::X;
}

XSim::XSim(const Netlist& nl)
    : nl_(nl), order_(netlist::topo_order(nl)), values_(nl.size(), Trit::X) {
  reset();
}

void XSim::reset() {
  for (SignalId s = 0; s < nl_.size(); ++s) values_[s] = Trit::X;
  for (SignalId d : nl_.dffs()) {
    switch (nl_.dff_init(d)) {
      case netlist::DffInit::Zero: values_[d] = Trit::Zero; break;
      case netlist::DffInit::One: values_[d] = Trit::One; break;
      case netlist::DffInit::X: values_[d] = Trit::X; break;
    }
  }
}

void XSim::set(SignalId s, Trit value) {
  const GateType t = nl_.type(s);
  if (t != GateType::Input && t != GateType::KeyInput) {
    throw std::invalid_argument("XSim::set: not an input: " +
                                nl_.signal_name(s));
  }
  values_[s] = value;
}

void XSim::eval() {
  for (SignalId s : order_) {
    const netlist::Node& n = nl_.node(s);
    switch (n.type) {
      case GateType::Input:
      case GateType::KeyInput:
      case GateType::Dff:
        break;
      case GateType::Const0: values_[s] = Trit::Zero; break;
      case GateType::Const1: values_[s] = Trit::One; break;
      case GateType::Buf: values_[s] = values_[n.fanins[0]]; break;
      case GateType::Not: values_[s] = trit_not(values_[n.fanins[0]]); break;
      case GateType::And:
      case GateType::Nand: {
        Trit v = Trit::One;
        for (SignalId f : n.fanins) v = trit_and(v, values_[f]);
        values_[s] = (n.type == GateType::Nand) ? trit_not(v) : v;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        Trit v = Trit::Zero;
        for (SignalId f : n.fanins) v = trit_or(v, values_[f]);
        values_[s] = (n.type == GateType::Nor) ? trit_not(v) : v;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        Trit v = Trit::Zero;
        for (SignalId f : n.fanins) v = trit_xor(v, values_[f]);
        values_[s] = (n.type == GateType::Xnor) ? trit_not(v) : v;
        break;
      }
      case GateType::Mux:
        values_[s] = trit_mux(values_[n.fanins[0]], values_[n.fanins[1]],
                              values_[n.fanins[2]]);
        break;
    }
  }
}

void XSim::step() {
  std::vector<Trit> next;
  next.reserve(nl_.dffs().size());
  for (SignalId d : nl_.dffs()) next.push_back(values_[nl_.dff_input(d)]);
  std::size_t i = 0;
  for (SignalId d : nl_.dffs()) values_[d] = next[i++];
}

std::vector<Trit> XSim::outputs() const {
  std::vector<Trit> out;
  out.reserve(nl_.outputs().size());
  for (SignalId o : nl_.outputs()) out.push_back(values_[o]);
  return out;
}

}  // namespace cl::sim
