// Shared kernel bodies for the per-ISA translation units. Each of
// kernels_generic.cpp / kernels_avx2.cpp / kernels_avx512.cpp includes this
// header and instantiates eval_span_impl with its own vector policy — a
// stateless struct describing one register tier:
//
//   static constexpr std::size_t width;   // lane words per register
//   using Reg;                            // register type
//   static Reg load(const std::uint64_t*);
//   static void store(std::uint64_t*, Reg);
//   static Reg band/bor/bxor(Reg, Reg);
//   static Reg bnot(Reg);
//   static Reg mux(Reg sel, Reg d0, Reg d1);   // sel ? d1 : d0, bitwise
//
// Kernels run the vector body over floor(n / width) registers and finish any
// remaining tail words with the scalar policy, so every lane count is legal
// for every tier (dispatch merely refuses tiers wider than the whole lane
// block). All policies are pure bitwise logic: results are bit-identical
// across tiers by construction, and tests/sim/test_kernels.cpp asserts it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/compiled.hpp"

namespace cl::sim::kernels::impl {

using netlist::SignalId;

/// The portable tier, and every SIMD tier's tail handler.
struct ScalarPolicy {
  static constexpr std::size_t width = 1;
  using Reg = std::uint64_t;
  static Reg load(const std::uint64_t* p) { return *p; }
  static void store(std::uint64_t* p, Reg r) { *p = r; }
  static Reg band(Reg a, Reg b) { return a & b; }
  static Reg bor(Reg a, Reg b) { return a | b; }
  static Reg bxor(Reg a, Reg b) { return a ^ b; }
  static Reg bnot(Reg a) { return ~a; }
  static Reg mux(Reg s, Reg d0, Reg d1) { return (s & d1) | (~s & d0); }
};

// map1/map2/map3 apply a bitwise functor lane-word-wise: full registers
// first, scalar tail after. The functor is a generic lambda taking the
// policy as its first argument, so one lambda serves both the vector body
// and the tail.

// GCC's vectorizer flags the dynamic-count (W == 0) tail loops with
// -Waggressive-loop-optimizations: it computes the iteration at which
// `out + w` would overflow PTRDIFF_MAX (2^61 words) and treats it as
// reachable. Lane counts are bounded by real signal-buffer allocations, so
// that iteration cannot occur; suppress the false positive for just these
// three helpers.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Waggressive-loop-optimizations"
#endif

template <class V, std::size_t W, class F>
inline void map1(std::uint64_t* out, const std::uint64_t* a, std::size_t n,
                 F f) {
  (void)n;
  const std::size_t count = W == 0 ? n : W;
  std::size_t w = 0;
  if constexpr (V::width > 1) {
    for (; w + V::width <= count; w += V::width) {
      V::store(out + w, f(V{}, V::load(a + w)));
    }
  }
  for (; w < count; ++w) out[w] = f(ScalarPolicy{}, a[w]);
}

template <class V, std::size_t W, class F>
inline void map2(std::uint64_t* out, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t n, F f) {
  (void)n;
  const std::size_t count = W == 0 ? n : W;
  std::size_t w = 0;
  if constexpr (V::width > 1) {
    for (; w + V::width <= count; w += V::width) {
      V::store(out + w, f(V{}, V::load(a + w), V::load(b + w)));
    }
  }
  for (; w < count; ++w) out[w] = f(ScalarPolicy{}, a[w], b[w]);
}

template <class V, std::size_t W, class F>
inline void map3(std::uint64_t* out, const std::uint64_t* a,
                 const std::uint64_t* b, const std::uint64_t* c, std::size_t n,
                 F f) {
  (void)n;
  const std::size_t count = W == 0 ? n : W;
  std::size_t w = 0;
  if constexpr (V::width > 1) {
    for (; w + V::width <= count; w += V::width) {
      V::store(out + w, f(V{}, V::load(a + w), V::load(b + w), V::load(c + w)));
    }
  }
  for (; w < count; ++w) out[w] = f(ScalarPolicy{}, a[w], b[w], c[w]);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

template <class V, std::size_t W>
inline void eval_instr_v(const Instr& in, const SignalId* pool,
                         std::uint64_t* v, std::size_t lanes) {
  const std::size_t n = W == 0 ? lanes : W;
  std::uint64_t* out = v + std::size_t{in.out} * n;
  const auto operand = [&](std::uint32_t s) {
    return v + std::size_t{s} * n;
  };
  const auto f_buf = [](auto p, auto a) {
    (void)p;
    return a;
  };
  const auto f_not = [](auto p, auto a) { return decltype(p)::bnot(a); };
  const auto f_and = [](auto p, auto a, auto b) {
    return decltype(p)::band(a, b);
  };
  const auto f_nand = [](auto p, auto a, auto b) {
    using P = decltype(p);
    return P::bnot(P::band(a, b));
  };
  const auto f_or = [](auto p, auto a, auto b) {
    return decltype(p)::bor(a, b);
  };
  const auto f_nor = [](auto p, auto a, auto b) {
    using P = decltype(p);
    return P::bnot(P::bor(a, b));
  };
  const auto f_xor = [](auto p, auto a, auto b) {
    return decltype(p)::bxor(a, b);
  };
  const auto f_xnor = [](auto p, auto a, auto b) {
    using P = decltype(p);
    return P::bnot(P::bxor(a, b));
  };
  const auto f_mux = [](auto p, auto s, auto d0, auto d1) {
    return decltype(p)::mux(s, d0, d1);
  };
  switch (in.op) {
    case Op::Buf:
      map1<V, W>(out, operand(in.a), n, f_buf);
      break;
    case Op::Not:
      map1<V, W>(out, operand(in.a), n, f_not);
      break;
    case Op::And2:
      map2<V, W>(out, operand(in.a), operand(in.b), n, f_and);
      break;
    case Op::Nand2:
      map2<V, W>(out, operand(in.a), operand(in.b), n, f_nand);
      break;
    case Op::Or2:
      map2<V, W>(out, operand(in.a), operand(in.b), n, f_or);
      break;
    case Op::Nor2:
      map2<V, W>(out, operand(in.a), operand(in.b), n, f_nor);
      break;
    case Op::Xor2:
      map2<V, W>(out, operand(in.a), operand(in.b), n, f_xor);
      break;
    case Op::Xnor2:
      map2<V, W>(out, operand(in.a), operand(in.b), n, f_xnor);
      break;
    case Op::Mux:
      // a=sel, b=data0, c=data1 (see Op): out = sel ? c : b.
      map3<V, W>(out, operand(in.a), operand(in.b), operand(in.c), n, f_mux);
      break;
    case Op::AndN:
    case Op::NandN: {
      map1<V, W>(out, operand(pool[in.a]), n, f_buf);
      for (std::uint32_t f = 1; f < in.b; ++f) {
        map2<V, W>(out, out, operand(pool[in.a + f]), n, f_and);
      }
      if (in.op == Op::NandN) map1<V, W>(out, out, n, f_not);
      break;
    }
    case Op::OrN:
    case Op::NorN: {
      map1<V, W>(out, operand(pool[in.a]), n, f_buf);
      for (std::uint32_t f = 1; f < in.b; ++f) {
        map2<V, W>(out, out, operand(pool[in.a + f]), n, f_or);
      }
      if (in.op == Op::NorN) map1<V, W>(out, out, n, f_not);
      break;
    }
    case Op::XorN:
    case Op::XnorN: {
      map1<V, W>(out, operand(pool[in.a]), n, f_buf);
      for (std::uint32_t f = 1; f < in.b; ++f) {
        map2<V, W>(out, out, operand(pool[in.a + f]), n, f_xor);
      }
      if (in.op == Op::XnorN) map1<V, W>(out, out, n, f_not);
      break;
    }
  }
}

template <class V, std::size_t W>
void eval_span_impl(const Instr* first, const Instr* last,
                    const SignalId* pool, std::uint64_t* v,
                    std::size_t lanes) {
  for (const Instr* in = first; in != last; ++in) {
    eval_instr_v<V, W>(*in, pool, v, lanes);
  }
}

}  // namespace cl::sim::kernels::impl
