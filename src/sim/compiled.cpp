#include "sim/compiled.hpp"

#include <algorithm>
#include <stdexcept>

#include "netlist/topo.hpp"
#include "sim/kernels.hpp"
#include "util/env.hpp"

namespace cl::sim {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

SimConfig sim_config_from_env() {
  // Parsed once per process: the hot sequence runners call this per run,
  // and an invalid value should warn once, not once per oracle query.
  static const SimConfig cached = [] {
    SimConfig c;
    c.lanes = util::env_size_or("CUTELOCK_SIM_LANES", 1);
    c.shard_threshold =
        util::env_size_or("CUTELOCK_SIM_SHARD_THRESHOLD", c.shard_threshold);
    c.jobs = util::jobs_from_env();
    return c;
  }();
  return cached;
}

util::ThreadPool& shard_pool() {
  static util::ThreadPool pool(util::jobs_from_env());
  return pool;
}

namespace {

Op op_for(GateType t, std::size_t arity) {
  switch (t) {
    case GateType::Buf: return Op::Buf;
    case GateType::Not: return Op::Not;
    case GateType::Mux: return Op::Mux;
    case GateType::And: return arity == 2 ? Op::And2 : Op::AndN;
    case GateType::Nand: return arity == 2 ? Op::Nand2 : Op::NandN;
    case GateType::Or: return arity == 2 ? Op::Or2 : Op::OrN;
    case GateType::Nor: return arity == 2 ? Op::Nor2 : Op::NorN;
    case GateType::Xor: return arity == 2 ? Op::Xor2 : Op::XorN;
    case GateType::Xnor: return arity == 2 ? Op::Xnor2 : Op::XnorN;
    default:
      throw std::logic_error("CompiledNetlist: unexpected gate type");
  }
}

}  // namespace

CompiledNetlist::CompiledNetlist(const Netlist& nl)
    : nl_(&nl), num_signals_(nl.size()) {
  const netlist::Levelization lv = netlist::levelize(nl);
  instrs_.reserve(nl.stats().gates);
  // Emit instructions in levelized order (gate levels start at 1; sources
  // occupy level 0 of the levelization). level_begin_[l] delimits the
  // instructions of gate-level l+1.
  level_begin_.push_back(0);
  std::size_t current_level = 1;
  for (std::size_t i = lv.level_begin[1]; i < lv.order.size(); ++i) {
    const SignalId id = lv.order[i];
    const netlist::Node& n = nl.node(id);
    const std::size_t level = static_cast<std::size_t>(lv.level[id]);
    while (current_level < level) {
      level_begin_.push_back(instrs_.size());
      ++current_level;
    }
    Instr in;
    in.out = id;
    in.op = op_for(n.type, n.fanins.size());
    switch (in.op) {
      case Op::Buf:
      case Op::Not:
        in.a = n.fanins[0];
        break;
      case Op::Mux:
        in.a = n.fanins[0];
        in.b = n.fanins[1];
        in.c = n.fanins[2];
        break;
      case Op::And2:
      case Op::Nand2:
      case Op::Or2:
      case Op::Nor2:
      case Op::Xor2:
      case Op::Xnor2:
        in.a = n.fanins[0];
        in.b = n.fanins[1];
        break;
      default:  // N-ary: spill to the pool
        in.a = static_cast<std::uint32_t>(pool_.size());
        in.b = static_cast<std::uint32_t>(n.fanins.size());
        pool_.insert(pool_.end(), n.fanins.begin(), n.fanins.end());
        break;
    }
    instrs_.push_back(in);
  }
  level_begin_.push_back(instrs_.size());

  inputs_ = nl.inputs();
  keys_ = nl.key_inputs();
  outputs_ = nl.outputs();
  dff_q_ = nl.dffs();
  dff_d_.reserve(dff_q_.size());
  dff_init_.reserve(dff_q_.size());
  for (SignalId d : dff_q_) {
    dff_d_.push_back(nl.dff_input(d));
    dff_init_.push_back(nl.dff_init(d));
  }
  for (SignalId s = 0; s < num_signals_; ++s) {
    if (nl.type(s) == GateType::Const0) const_0_.push_back(s);
    if (nl.type(s) == GateType::Const1) const_1_.push_back(s);
  }
  settable_.assign(num_signals_, 0);
  for (SignalId s : inputs_) settable_[s] = 1;
  for (SignalId s : keys_) settable_[s] = 1;
}

void CompiledNetlist::reset_words(std::uint64_t* values,
                                  std::size_t lanes) const {
  std::fill(values, values + num_signals_ * lanes, 0ULL);
  for (std::size_t i = 0; i < dff_q_.size(); ++i) {
    if (dff_init_[i] == netlist::DffInit::One) {
      std::uint64_t* q = values + std::size_t{dff_q_[i]} * lanes;
      std::fill(q, q + lanes, ~0ULL);
    }
  }
  for (SignalId s : const_1_) {
    std::uint64_t* w = values + std::size_t{s} * lanes;
    std::fill(w, w + lanes, ~0ULL);
  }
}

void CompiledNetlist::eval_range(std::size_t first, std::size_t last,
                                 std::uint64_t* values,
                                 std::size_t lanes) const {
  // The Op kernels live in sim/kernels_*.cpp, one translation unit per ISA
  // tier; eval_span_for resolves the strongest tier for this host and lane
  // count (overridable via CUTELOCK_SIM_ISA).
  kernels::eval_span_for(lanes)(instrs_.data() + first, instrs_.data() + last,
                                pool_.data(), values, lanes);
}

void CompiledNetlist::eval(std::uint64_t* values, std::size_t lanes) const {
  eval_range(0, instrs_.size(), values, lanes);
}

void CompiledNetlist::eval_sharded(std::uint64_t* values, std::size_t lanes,
                                   util::ThreadPool& pool) const {
  const std::size_t workers = pool.size();
  if (workers <= 1) {
    eval(values, lanes);
    return;
  }
  // Chunking a tiny level across threads costs more in wakeups than the
  // kernels themselves; evaluate such levels inline. The TaskGroup scopes
  // each level barrier to THIS eval's tasks, so concurrent sharded evals on
  // the shared pool do not convoy on one another.
  constexpr std::size_t k_min_words_per_shard = 2048;
  util::TaskGroup group(pool);
  for (std::size_t l = 0; l + 1 < level_begin_.size(); ++l) {
    const std::size_t first = level_begin_[l];
    const std::size_t last = level_begin_[l + 1];
    const std::size_t n = last - first;
    if (n * lanes < 2 * k_min_words_per_shard) {
      eval_range(first, last, values, lanes);
      continue;
    }
    const std::size_t shards =
        std::min(workers, std::max<std::size_t>(
                              1, n * lanes / k_min_words_per_shard));
    const std::size_t chunk = (n + shards - 1) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t b = first + s * chunk;
      const std::size_t e = std::min(last, b + chunk);
      if (b >= e) break;
      group.submit([this, b, e, values, lanes] {
        eval_range(b, e, values, lanes);
      });
    }
    group.wait();  // level barrier: next level reads this level's outputs
  }
}

void CompiledNetlist::eval_auto(std::uint64_t* values, std::size_t lanes,
                                const SimConfig& config) const {
  if (config.jobs > 1 && num_gates() >= config.shard_threshold) {
    eval_sharded(values, lanes, shard_pool());
  } else {
    eval(values, lanes);
  }
}

void CompiledNetlist::step_words_raw(std::uint64_t* values, std::size_t lanes,
                                     std::uint64_t* scratch) const {
  for (std::size_t i = 0; i < dff_q_.size(); ++i) {
    const std::uint64_t* d = values + std::size_t{dff_d_[i]} * lanes;
    std::copy(d, d + lanes, scratch + i * lanes);
  }
  for (std::size_t i = 0; i < dff_q_.size(); ++i) {
    std::uint64_t* q = values + std::size_t{dff_q_[i]} * lanes;
    std::copy(scratch + i * lanes, scratch + (i + 1) * lanes, q);
  }
}

WideSim::WideSim(const Netlist& nl, SimConfig config)
    : WideSim(std::make_shared<const CompiledNetlist>(nl), config) {}

WideSim::WideSim(std::shared_ptr<const CompiledNetlist> compiled,
                 SimConfig config)
    : compiled_(std::move(compiled)),
      config_(config),
      lanes_(std::max<std::size_t>(1, config.lanes)),
      values_(compiled_->buffer_words(lanes_), 0) {
  reset();
}

void WideSim::reset() { compiled_->reset_words(values_.data(), lanes_); }

void WideSim::set_word(SignalId s, std::size_t w, std::uint64_t word) {
  if (!compiled_->settable(s)) {
    throw std::invalid_argument("WideSim::set_word: not an input: " +
                                compiled_->source().signal_name(s));
  }
  if (w >= lanes_) {
    // Signal-major layout: an unchecked w would land in the next signal.
    throw std::out_of_range("WideSim::set_word: word index out of range");
  }
  values_[s * lanes_ + w] = word;
}

void WideSim::set_bit(SignalId s, std::size_t p, bool bit) {
  if (!compiled_->settable(s)) {
    throw std::invalid_argument("WideSim::set_bit: not an input: " +
                                compiled_->source().signal_name(s));
  }
  if (p >= patterns()) {
    throw std::out_of_range("WideSim::set_bit: pattern index out of range");
  }
  std::uint64_t& word = values_[s * lanes_ + p / 64];
  const std::uint64_t mask = 1ULL << (p % 64);
  word = bit ? (word | mask) : (word & ~mask);
}

void WideSim::eval() { compiled_->eval_auto(values_.data(), lanes_, config_); }

void WideSim::step() { compiled_->step_words(values_.data(), lanes_, scratch_); }

}  // namespace cl::sim
