// Kernel tier selection. The per-ISA entry points live in their own
// translation units (kernels_generic/avx2/avx512.cpp); this file owns the
// process-wide decision of which ones may run, combining three inputs:
// compile-time availability (did the toolchain build the intrinsics?),
// runtime CPU support (util::cpu), and the CUTELOCK_SIM_ISA override.
#include "sim/kernels.hpp"

#include <cstdio>

namespace cl::sim::kernels {

// Defined in the respective kernels_*.cpp: true when that TU was built with
// real intrinsics rather than the forwarding stub.
bool detail_generic_compiled_in();
bool detail_avx2_compiled_in();
bool detail_avx512_compiled_in();

bool compiled_in(util::SimIsa isa) {
  switch (isa) {
    case util::SimIsa::Generic: return detail_generic_compiled_in();
    case util::SimIsa::Avx2: return detail_avx2_compiled_in();
    case util::SimIsa::Avx512: return detail_avx512_compiled_in();
  }
  return false;
}

bool available(util::SimIsa isa) {
  return compiled_in(isa) && util::cpu_supports(isa);
}

namespace {

util::SimIsa detect_active_isa() {
  util::SimIsa best = util::SimIsa::Generic;
  if (available(util::SimIsa::Avx512)) {
    best = util::SimIsa::Avx512;
  } else if (available(util::SimIsa::Avx2)) {
    best = util::SimIsa::Avx2;
  }
  util::SimIsa requested{};
  if (util::sim_isa_from_env(&requested)) {
    if (available(requested)) return requested;
    std::fprintf(stderr,
                 "warning: CUTELOCK_SIM_ISA=%s is not available on this host "
                 "(compiled_in=%d cpu=%d); using %s\n",
                 util::sim_isa_name(requested),
                 int(compiled_in(requested)),
                 int(util::cpu_supports(requested)),
                 util::sim_isa_name(best));
  }
  return best;
}

util::SimIsa& active_isa_slot() {
  static util::SimIsa isa = detect_active_isa();
  return isa;
}

}  // namespace

util::SimIsa active_isa() { return active_isa_slot(); }

bool set_active_isa(util::SimIsa isa) {
  if (!available(isa)) return false;
  active_isa_slot() = isa;
  return true;
}

EvalSpanFn eval_span_for(std::size_t lanes, util::SimIsa isa) {
  // A tier only pays off when at least one full vector fits in the lane
  // block; narrower blocks run the tier below.
  if (isa >= util::SimIsa::Avx512 && lanes >= 8 &&
      available(util::SimIsa::Avx512)) {
    return &eval_span_avx512;
  }
  if (isa >= util::SimIsa::Avx2 && lanes >= 4 &&
      available(util::SimIsa::Avx2)) {
    return &eval_span_avx2;
  }
  return &eval_span_generic;
}

EvalSpanFn eval_span_for(std::size_t lanes) {
  return eval_span_for(lanes, active_isa());
}

}  // namespace cl::sim::kernels
