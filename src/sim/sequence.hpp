// Multi-cycle sequence simulation helpers: scalar (lane-0) and 64-lane
// parallel runs, random stimulus generation, and sequence comparison. These
// are the building blocks for oracles, validation tables, and the black-box
// attack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/bit_sim.hpp"
#include "sim/x_sim.hpp"
#include "util/rng.hpp"

namespace cl::sim {

/// One bit per signal, cycle-major: pattern[cycle][i] drives the i-th entry
/// of the corresponding port list.
using BitVec = std::vector<std::uint8_t>;

/// Run `nl` for inputs.size() cycles. inputs[c][i] drives nl.inputs()[i] and
/// keys[c][j] drives nl.key_inputs()[j] on cycle c. `keys` may be empty when
/// the circuit has no key inputs, or contain a single entry that is then held
/// constant for the whole run (a static key). Outputs are sampled
/// combinationally each cycle, before the clock edge.
std::vector<BitVec> run_sequence(const netlist::Netlist& nl,
                                 const std::vector<BitVec>& inputs,
                                 const std::vector<BitVec>& keys = {});

/// Same, over a pre-compiled netlist — the hot-path variant: callers that
/// run many sequences on one circuit (oracles, verifiers, screening loops)
/// compile once and skip the per-call levelization.
std::vector<BitVec> run_sequence(const CompiledNetlist& compiled,
                                 const std::vector<BitVec>& inputs,
                                 const std::vector<BitVec>& keys = {});

/// Batched sequence evaluation with wide lanes: run `sequences.size()`
/// independent input sequences (all of equal length and width) in one
/// multi-word pass — sequence j rides pattern lane j. `keys` follows the
/// run_sequence contract (empty for key-free circuits, one entry held
/// static, or per-cycle) and is broadcast to every lane, so a keyed circuit
/// can batch many stimuli under one key candidate. Returns per-sequence
/// output traces, element-for-element equal to running run_sequence on each.
std::vector<std::vector<BitVec>> run_sequences_batched(
    const CompiledNetlist& compiled,
    const std::vector<std::vector<BitVec>>& sequences,
    const std::vector<BitVec>& keys = {});

/// Three-valued variant (power-up X preserved). Returns trits per cycle.
std::vector<std::vector<Trit>> run_sequence_x(const netlist::Netlist& nl,
                                              const std::vector<BitVec>& inputs,
                                              const std::vector<BitVec>& keys = {});

/// 64 independent key candidates in one pass: lane j of `key_lanes[j_bit]`...
/// Concretely, key_words[k] holds the 64 lanes of key bit k; all lanes see
/// the same input sequence. Returns output words per cycle (outputs[c][o] is
/// the 64-lane word of output o on cycle c).
std::vector<std::vector<std::uint64_t>> run_sequence_keyed_lanes(
    const netlist::Netlist& nl, const std::vector<BitVec>& inputs,
    const std::vector<std::uint64_t>& key_words);

/// Pre-compiled variant of run_sequence_keyed_lanes (used by the parallel
/// BBO screening loop: one compilation, many concurrent screeners).
std::vector<std::vector<std::uint64_t>> run_sequence_keyed_lanes(
    const CompiledNetlist& compiled, const std::vector<BitVec>& inputs,
    const std::vector<std::uint64_t>& key_words);

/// Uniform random bit-vector of width n.
BitVec random_bits(util::Rng& rng, std::size_t n);

/// Uniform random stimulus: `cycles` vectors of width n.
std::vector<BitVec> random_stimulus(util::Rng& rng, std::size_t cycles,
                                    std::size_t n);

/// First cycle where the two output traces differ, or -1 if identical.
/// Traces must have equal dimensions.
int first_divergence(const std::vector<BitVec>& a, const std::vector<BitVec>& b);

/// Render a BitVec as binary text, index 0 leftmost.
std::string bits_to_string(const BitVec& bits);

/// Pack a BitVec (index 0 = LSB) into a word; width must be <= 64.
std::uint64_t bits_to_u64(const BitVec& bits);

/// Unpack the low `n` bits of a word into a BitVec (index 0 = LSB).
BitVec u64_to_bits(std::uint64_t word, std::size_t n);

}  // namespace cl::sim
