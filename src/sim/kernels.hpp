// SIMD execution backend of sim::CompiledNetlist.
//
// Every Op kernel exists in three implementations, one per translation unit,
// each compiled with its own instruction-set flags:
//   kernels_generic.cpp  portable scalar 64-bit words (the PR 3 kernels,
//                        with the same fixed-width specializations)
//   kernels_avx2.cpp     256-bit vectors, 4 lane words per op (-mavx2)
//   kernels_avx512.cpp   512-bit vectors, 8 lane words per op (-mavx512f)
// All three compute identical bits — the ops are pure bitwise logic — so the
// choice is a pure throughput decision, made once per process by
// active_isa(): the strongest tier that (a) the CPU reports at runtime
// (util::cpu), (b) the toolchain could compile (non-x86 builds degrade the
// AVX units to forwarding stubs), and (c) CUTELOCK_SIM_ISA does not veto.
//
// Dispatch is per (ISA, lane count): a narrow buffer cannot feed a wide
// vector, so W < 4 always runs generic and W < 8 at most AVX2, with any
// non-multiple tail words handled scalar inside the SIMD kernels.
#pragma once

#include <cstddef>
#include <cstdint>

#include "netlist/netlist.hpp"
#include "util/cpu.hpp"

namespace cl::sim {

struct Instr;

namespace kernels {

/// Evaluate the instruction span [first, last) over `values` (signal-major,
/// `lanes` words per signal). N-ary instructions read their fanins from
/// `pool`.
using EvalSpanFn = void (*)(const Instr* first, const Instr* last,
                            const netlist::SignalId* pool,
                            std::uint64_t* values, std::size_t lanes);

// Per-ISA entry points. The AVX functions must only be called on hosts whose
// CPU reports the extension (active dispatch guarantees this); on toolchains
// that cannot build the intrinsics they forward to the generic kernels.
void eval_span_generic(const Instr* first, const Instr* last,
                       const netlist::SignalId* pool, std::uint64_t* values,
                       std::size_t lanes);
void eval_span_avx2(const Instr* first, const Instr* last,
                    const netlist::SignalId* pool, std::uint64_t* values,
                    std::size_t lanes);
void eval_span_avx512(const Instr* first, const Instr* last,
                      const netlist::SignalId* pool, std::uint64_t* values,
                      std::size_t lanes);

/// True when the tier's translation unit was built with real intrinsics
/// (always true for Generic). Distinct from util::cpu_supports, which asks
/// the CPU.
bool compiled_in(util::SimIsa isa);

/// True when the tier can actually execute here: compiled in AND supported
/// by the running CPU.
bool available(util::SimIsa isa);

/// The process-wide active tier: min(CUTELOCK_SIM_ISA when set, best
/// available). Cached after the first call; an invalid or unsupported env
/// request warns once on stderr and falls back to auto-detection.
util::SimIsa active_isa();

/// Test hook: force the active tier. Returns false (and changes nothing)
/// when the tier is not available on this host. Not thread-safe against
/// concurrent eval calls — tests only.
bool set_active_isa(util::SimIsa isa);

/// The kernel for `lanes` words per signal under the active tier (or an
/// explicit one): the strongest tier whose vector width fits the lane count.
EvalSpanFn eval_span_for(std::size_t lanes);
EvalSpanFn eval_span_for(std::size_t lanes, util::SimIsa isa);

}  // namespace kernels
}  // namespace cl::sim
