#include "sim/sequence.hpp"

#include <algorithm>
#include <stdexcept>

namespace cl::sim {

using netlist::Netlist;
using netlist::SignalId;

namespace {

void check_widths(std::size_t num_inputs, std::size_t num_keys,
                  const std::vector<BitVec>& inputs,
                  const std::vector<BitVec>& keys) {
  for (const BitVec& v : inputs) {
    if (v.size() != num_inputs) {
      throw std::invalid_argument("run_sequence: input width mismatch");
    }
  }
  for (const BitVec& v : keys) {
    if (v.size() != num_keys) {
      throw std::invalid_argument("run_sequence: key width mismatch");
    }
  }
  if (!keys.empty() && keys.size() != 1 && keys.size() != inputs.size()) {
    throw std::invalid_argument(
        "run_sequence: keys must be empty, size 1 (static) or per-cycle");
  }
  if (keys.empty() && num_keys != 0) {
    throw std::invalid_argument(
        "run_sequence: circuit has key inputs but no key values given");
  }
}

const BitVec& key_for_cycle(const std::vector<BitVec>& keys, std::size_t c) {
  return keys.size() == 1 ? keys[0] : keys[c];
}

}  // namespace

std::vector<BitVec> run_sequence(const Netlist& nl,
                                 const std::vector<BitVec>& inputs,
                                 const std::vector<BitVec>& keys) {
  return run_sequence(CompiledNetlist(nl), inputs, keys);
}

std::vector<BitVec> run_sequence(const CompiledNetlist& compiled,
                                 const std::vector<BitVec>& inputs,
                                 const std::vector<BitVec>& keys) {
  check_widths(compiled.inputs().size(), compiled.key_inputs().size(), inputs,
               keys);
  const SimConfig config = sim_config_from_env();
  util::AlignedVec<std::uint64_t> v(compiled.buffer_words(1), 0);
  util::AlignedVec<std::uint64_t> scratch;
  compiled.reset_words(v.data(), 1);
  std::vector<BitVec> out;
  out.reserve(inputs.size());
  for (std::size_t c = 0; c < inputs.size(); ++c) {
    for (std::size_t i = 0; i < compiled.inputs().size(); ++i) {
      v[compiled.inputs()[i]] = inputs[c][i] ? ~0ULL : 0ULL;
    }
    if (!keys.empty()) {
      const BitVec& kv = key_for_cycle(keys, c);
      for (std::size_t k = 0; k < compiled.key_inputs().size(); ++k) {
        v[compiled.key_inputs()[k]] = kv[k] ? ~0ULL : 0ULL;
      }
    }
    compiled.eval_auto(v.data(), 1, config);
    BitVec cycle_out(compiled.outputs().size());
    for (std::size_t o = 0; o < compiled.outputs().size(); ++o) {
      cycle_out[o] = (v[compiled.outputs()[o]] & 1ULL) ? 1 : 0;
    }
    out.push_back(std::move(cycle_out));
    compiled.step_words(v.data(), 1, scratch);
  }
  return out;
}

std::vector<std::vector<BitVec>> run_sequences_batched(
    const CompiledNetlist& compiled,
    const std::vector<std::vector<BitVec>>& sequences,
    const std::vector<BitVec>& keys) {
  if (sequences.empty()) return {};
  const std::size_t cycles = sequences[0].size();
  for (const auto& seq : sequences) {
    if (seq.size() != cycles) {
      throw std::invalid_argument(
          "run_sequences_batched: sequences must have equal length");
    }
    for (const BitVec& v : seq) {
      if (v.size() != compiled.inputs().size()) {
        throw std::invalid_argument(
            "run_sequences_batched: input width mismatch");
      }
    }
  }
  for (const BitVec& v : keys) {
    if (v.size() != compiled.key_inputs().size()) {
      throw std::invalid_argument("run_sequences_batched: key width mismatch");
    }
  }
  if (!keys.empty() && keys.size() != 1 && keys.size() != cycles) {
    throw std::invalid_argument(
        "run_sequences_batched: keys must be empty, size 1 (static) or "
        "per-cycle");
  }
  if (keys.empty() && !compiled.key_inputs().empty()) {
    throw std::invalid_argument(
        "run_sequences_batched: circuit has key inputs but no key values "
        "given");
  }
  const std::size_t lanes = (sequences.size() + 63) / 64;  // W words
  SimConfig config = sim_config_from_env();
  util::AlignedVec<std::uint64_t> v(compiled.buffer_words(lanes), 0);
  util::AlignedVec<std::uint64_t> scratch;
  compiled.reset_words(v.data(), lanes);
  std::vector<std::vector<BitVec>> out(
      sequences.size(), std::vector<BitVec>(cycles));
  for (std::size_t c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < compiled.inputs().size(); ++i) {
      std::uint64_t* words = v.data() + compiled.inputs()[i] * lanes;
      std::fill(words, words + lanes, 0ULL);
      for (std::size_t j = 0; j < sequences.size(); ++j) {
        if (sequences[j][c][i]) words[j / 64] |= 1ULL << (j % 64);
      }
    }
    if (!keys.empty()) {
      // The key candidate is shared by every lane: broadcast each key bit
      // across the whole lane block.
      const BitVec& kv = key_for_cycle(keys, c);
      for (std::size_t k = 0; k < compiled.key_inputs().size(); ++k) {
        std::uint64_t* words = v.data() + compiled.key_inputs()[k] * lanes;
        std::fill(words, words + lanes, kv[k] ? ~0ULL : 0ULL);
      }
    }
    compiled.eval_auto(v.data(), lanes, config);
    for (std::size_t j = 0; j < sequences.size(); ++j) {
      BitVec& cycle_out = out[j][c];
      cycle_out.resize(compiled.outputs().size());
      for (std::size_t o = 0; o < compiled.outputs().size(); ++o) {
        const std::uint64_t word =
            v[compiled.outputs()[o] * lanes + j / 64];
        cycle_out[o] = (word >> (j % 64)) & 1ULL ? 1 : 0;
      }
    }
    compiled.step_words(v.data(), lanes, scratch);
  }
  return out;
}

std::vector<std::vector<Trit>> run_sequence_x(const Netlist& nl,
                                              const std::vector<BitVec>& inputs,
                                              const std::vector<BitVec>& keys) {
  check_widths(nl.inputs().size(), nl.key_inputs().size(), inputs, keys);
  XSim sim(nl);
  std::vector<std::vector<Trit>> out;
  out.reserve(inputs.size());
  for (std::size_t c = 0; c < inputs.size(); ++c) {
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      sim.set(nl.inputs()[i], inputs[c][i] ? Trit::One : Trit::Zero);
    }
    if (!keys.empty()) {
      const BitVec& kv = key_for_cycle(keys, c);
      for (std::size_t k = 0; k < nl.key_inputs().size(); ++k) {
        sim.set(nl.key_inputs()[k], kv[k] ? Trit::One : Trit::Zero);
      }
    }
    sim.eval();
    std::vector<Trit> cycle_out(nl.outputs().size());
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      cycle_out[o] = sim.get(nl.outputs()[o]);
    }
    out.push_back(std::move(cycle_out));
    sim.step();
  }
  return out;
}

std::vector<std::vector<std::uint64_t>> run_sequence_keyed_lanes(
    const Netlist& nl, const std::vector<BitVec>& inputs,
    const std::vector<std::uint64_t>& key_words) {
  return run_sequence_keyed_lanes(CompiledNetlist(nl), inputs, key_words);
}

std::vector<std::vector<std::uint64_t>> run_sequence_keyed_lanes(
    const CompiledNetlist& compiled, const std::vector<BitVec>& inputs,
    const std::vector<std::uint64_t>& key_words) {
  if (key_words.size() != compiled.key_inputs().size()) {
    throw std::invalid_argument("run_sequence_keyed_lanes: key width mismatch");
  }
  const SimConfig config = sim_config_from_env();
  util::AlignedVec<std::uint64_t> v(compiled.buffer_words(1), 0);
  util::AlignedVec<std::uint64_t> scratch;
  compiled.reset_words(v.data(), 1);
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(inputs.size());
  for (std::size_t c = 0; c < inputs.size(); ++c) {
    if (inputs[c].size() != compiled.inputs().size()) {
      throw std::invalid_argument("run_sequence_keyed_lanes: input width mismatch");
    }
    for (std::size_t i = 0; i < compiled.inputs().size(); ++i) {
      v[compiled.inputs()[i]] = inputs[c][i] ? ~0ULL : 0ULL;
    }
    for (std::size_t k = 0; k < key_words.size(); ++k) {
      v[compiled.key_inputs()[k]] = key_words[k];
    }
    compiled.eval_auto(v.data(), 1, config);
    std::vector<std::uint64_t> cycle_out(compiled.outputs().size());
    for (std::size_t o = 0; o < compiled.outputs().size(); ++o) {
      cycle_out[o] = v[compiled.outputs()[o]];
    }
    out.push_back(std::move(cycle_out));
    compiled.step_words(v.data(), 1, scratch);
  }
  return out;
}

BitVec random_bits(util::Rng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.chance(1, 2) ? 1 : 0;
  return v;
}

std::vector<BitVec> random_stimulus(util::Rng& rng, std::size_t cycles,
                                    std::size_t n) {
  std::vector<BitVec> out;
  out.reserve(cycles);
  for (std::size_t c = 0; c < cycles; ++c) out.push_back(random_bits(rng, n));
  return out;
}

int first_divergence(const std::vector<BitVec>& a, const std::vector<BitVec>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("first_divergence: length mismatch");
  }
  for (std::size_t c = 0; c < a.size(); ++c) {
    if (a[c] != b[c]) return static_cast<int>(c);
  }
  return -1;
}

std::string bits_to_string(const BitVec& bits) {
  std::string s;
  s.reserve(bits.size());
  for (std::uint8_t b : bits) s += b ? '1' : '0';
  return s;
}

std::uint64_t bits_to_u64(const BitVec& bits) {
  if (bits.size() > 64) throw std::invalid_argument("bits_to_u64: too wide");
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) w |= 1ULL << i;
  }
  return w;
}

BitVec u64_to_bits(std::uint64_t word, std::size_t n) {
  if (n > 64) throw std::invalid_argument("u64_to_bits: too wide");
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = (word >> i) & 1ULL ? 1 : 0;
  return v;
}

}  // namespace cl::sim
