// The pre-compilation 64-lane evaluator: walks the Netlist node graph in
// topological order, one switch per gate per eval. Kept verbatim as (a) the
// independent oracle the randomized CompiledNetlist cross-check tests
// compare against and (b) the bench_micro_perf baseline the compiled
// engine's speedup is measured from. Production code paths use BitSim,
// which rides the compiled core.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace cl::sim {

class ReferenceSim {
 public:
  explicit ReferenceSim(const netlist::Netlist& nl);

  /// Reset all DFFs to their power-up values (X treated as 0) and clear
  /// input/key words.
  void reset();

  /// Assign the 64-lane word of a primary/key input.
  void set(netlist::SignalId s, std::uint64_t word);

  /// Current word of any signal (valid after eval()).
  std::uint64_t get(netlist::SignalId s) const { return values_[s]; }

  /// Propagate through the combinational core.
  void eval();

  /// Latch every DFF: Q <= D. Call after eval().
  void step();

 private:
  const netlist::Netlist& nl_;
  std::vector<netlist::SignalId> order_;
  std::vector<std::uint64_t> values_;
};

}  // namespace cl::sim
