// VCD (Value Change Dump) waveform writer — record a multi-cycle simulation
// for inspection in GTKWave & co. Captures inputs, keys, outputs and
// flip-flop states each cycle; three-valued traces render power-up X.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/sequence.hpp"

namespace cl::sim {

struct VcdOptions {
  std::string timescale = "1ns";
  std::size_t cycle_ns = 20;  // matches the paper's 20 ns tables
  bool include_internal = false;  // also dump every combinational signal
};

/// Simulate `nl` over `inputs` (+ optional per-cycle `keys`, same contract
/// as run_sequence) and stream a VCD document. Uses the three-valued
/// simulator so X power-up is visible.
void write_vcd(std::ostream& out, const netlist::Netlist& nl,
               const std::vector<BitVec>& inputs,
               const std::vector<BitVec>& keys = {},
               const VcdOptions& options = {});

std::string write_vcd_string(const netlist::Netlist& nl,
                             const std::vector<BitVec>& inputs,
                             const std::vector<BitVec>& keys = {},
                             const VcdOptions& options = {});

}  // namespace cl::sim
