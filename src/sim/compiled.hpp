// Compiled simulation core: a one-time translation of a Netlist into a
// levelized, cache-friendly flat instruction stream.
//
// Compilation replaces the pointer-heavy node-graph walk (hash lookups,
// vector-of-vector fanin chasing, one switch per gate per eval) with:
//   - contiguous Instr records sorted by logic level, operands inlined for
//     arities <= 3 and spilled to one flat fanin pool otherwise;
//   - arity-specialized opcodes (And2 vs AndN, ...) so the hot kernels are
//     branch-light and vectorizable;
//   - wide lanes: every signal carries W consecutive 64-bit words, so one
//     eval() pass simulates 64*W independent patterns (W from SimConfig /
//     CUTELOCK_SIM_LANES);
//   - sharded execution: instructions within one level are independent, so
//     each level can be chunked across a util::ThreadPool with a barrier per
//     level — engaged automatically for netlists above a gate-count
//     threshold (CUTELOCK_SIM_SHARD_THRESHOLD).
//
// BitSim, XSim, sim::sequence and attack::SequentialOracle are thin adapters
// over this core; tests cross-check it against sim::ReferenceSim (the
// pre-compilation evaluator).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/aligned.hpp"
#include "util/thread_pool.hpp"

namespace cl::sim {

/// Arity-specialized opcodes. N-suffixed forms read their fanins from the
/// flat pool; the rest use the inlined operands a/b/c. Constants have no
/// opcode: Const0/Const1 are fanin-less *sources* in the netlist model, so
/// their values are loaded once by reset_words(), never re-evaluated.
enum class Op : std::uint8_t {
  Buf, Not,
  And2, Nand2, Or2, Nor2, Xor2, Xnor2,
  Mux,  // a=sel, b=data0, c=data1 : out = sel ? c : b
  AndN, NandN, OrN, NorN, XorN, XnorN,
};

/// One compiled gate. For arity <= 3 the operand SignalIds live in a/b/c;
/// for N-ary ops `a` is the offset into fanin_pool() and `b` the count.
struct Instr {
  netlist::SignalId out = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  Op op = Op::Buf;
};

/// Engine knobs. Defaults come from the environment (sim_config_from_env):
///   CUTELOCK_SIM_LANES            W: 64-bit words per signal (64*W patterns)
///   CUTELOCK_SIM_SHARD_THRESHOLD  gate count at which eval shards
///   CUTELOCK_JOBS                 shard pool width
struct SimConfig {
  std::size_t lanes = 1;
  std::size_t shard_threshold = 250'000;
  std::size_t jobs = 1;
};

/// The environment-derived default configuration (parsed once per call).
SimConfig sim_config_from_env();

/// Process-wide pool for sharded evaluation, sized by CUTELOCK_JOBS on first
/// use. Distinct from any bench::Runner pool, so a Runner worker evaluating
/// a large netlist can block in eval() without starving its own pool.
util::ThreadPool& shard_pool();

class CompiledNetlist {
 public:
  /// Compile `nl`. The netlist must outlive this object and must not be
  /// mutated afterwards (SignalIds are baked into the instruction stream).
  explicit CompiledNetlist(const netlist::Netlist& nl);

  const netlist::Netlist& source() const { return *nl_; }
  std::size_t num_signals() const { return num_signals_; }
  std::size_t num_gates() const { return instrs_.size(); }
  std::size_t num_levels() const { return level_begin_.size() - 1; }

  // ---- instruction stream (used by the trit adapter XSim) ---------------
  const std::vector<Instr>& instructions() const { return instrs_; }
  const std::vector<netlist::SignalId>& fanin_pool() const { return pool_; }

  // Source/DFF bookkeeping mirrored from the netlist (flat copies, so the
  // hot loops never touch the Netlist).
  const std::vector<netlist::SignalId>& inputs() const { return inputs_; }
  const std::vector<netlist::SignalId>& key_inputs() const { return keys_; }
  const std::vector<netlist::SignalId>& outputs() const { return outputs_; }
  const std::vector<netlist::SignalId>& dff_qs() const { return dff_q_; }
  const std::vector<netlist::SignalId>& dff_ds() const { return dff_d_; }
  const std::vector<netlist::DffInit>& dff_inits() const { return dff_init_; }
  /// Constant-source signals (Const0/Const1 are fanin-less sources in the
  /// netlist model; their values are loaded by reset_words, not eval).
  const std::vector<netlist::SignalId>& const_ones() const { return const_1_; }
  const std::vector<netlist::SignalId>& const_zeros() const { return const_0_; }

  /// True for signals accepted by the set() of the adapters (Input or
  /// KeyInput), indexed by SignalId.
  bool settable(netlist::SignalId s) const { return settable_[s]; }

  // ---- word-buffer evaluation -------------------------------------------
  // Buffers are signal-major: signal s owns words [s*lanes, (s+1)*lanes).

  std::size_t buffer_words(std::size_t lanes) const {
    return num_signals_ * lanes;
  }

  /// Zero every word, then load DFF power-up values (X treated as 0, as in
  /// BitSim) and constant-source values.
  void reset_words(std::uint64_t* values, std::size_t lanes) const;

  /// Propagate through the combinational core, single-threaded.
  void eval(std::uint64_t* values, std::size_t lanes) const;

  /// Level-parallel propagation: each level's instruction range is chunked
  /// across `pool` with a barrier between levels. Bit-identical to eval()
  /// for any pool size. Never pass the pool whose worker is running this
  /// call. Small levels are evaluated inline.
  void eval_sharded(std::uint64_t* values, std::size_t lanes,
                    util::ThreadPool& pool) const;

  /// eval() or eval_sharded(shard_pool()) according to `config` (gate count
  /// >= shard_threshold and jobs > 1).
  void eval_auto(std::uint64_t* values, std::size_t lanes,
                 const SimConfig& config) const;

  /// Latch every DFF: Q <= D, two-phase (register-to-register safe).
  /// `scratch` must hold dff_qs().size() * lanes words.
  void step_words_raw(std::uint64_t* values, std::size_t lanes,
                      std::uint64_t* scratch) const;

  /// step_words_raw with an owning scratch vector (any allocator), resized
  /// as needed and reusable across calls.
  template <class Alloc>
  void step_words(std::uint64_t* values, std::size_t lanes,
                  std::vector<std::uint64_t, Alloc>& scratch) const {
    scratch.resize(dff_q_.size() * lanes);
    step_words_raw(values, lanes, scratch.data());
  }

 private:
  void eval_range(std::size_t first, std::size_t last, std::uint64_t* values,
                  std::size_t lanes) const;

  const netlist::Netlist* nl_;
  std::size_t num_signals_ = 0;
  std::vector<Instr> instrs_;               // level-sorted
  std::vector<std::size_t> level_begin_;    // instr offsets per gate level
  std::vector<netlist::SignalId> pool_;     // N-ary fanins, contiguous
  std::vector<netlist::SignalId> inputs_;
  std::vector<netlist::SignalId> keys_;
  std::vector<netlist::SignalId> outputs_;
  std::vector<netlist::SignalId> dff_q_;
  std::vector<netlist::SignalId> dff_d_;
  std::vector<netlist::DffInit> dff_init_;
  std::vector<netlist::SignalId> const_0_;
  std::vector<netlist::SignalId> const_1_;
  std::vector<std::uint8_t> settable_;
};

/// Wide-lane engine: owns a W-word-per-signal buffer over a compiled
/// netlist. One eval() simulates 64*W patterns; pattern p lives in bit
/// (p % 64) of word (p / 64). Sharded evaluation engages automatically per
/// SimConfig.
class WideSim {
 public:
  /// Compile privately with W = config.lanes.
  explicit WideSim(const netlist::Netlist& nl,
                   SimConfig config = sim_config_from_env());
  /// Share a compilation (e.g. one compile, many parallel evaluators).
  WideSim(std::shared_ptr<const CompiledNetlist> compiled,
          SimConfig config = sim_config_from_env());

  const CompiledNetlist& compiled() const { return *compiled_; }
  /// W: 64-bit words per signal.
  std::size_t lane_words() const { return lanes_; }
  /// 64 * W.
  std::size_t patterns() const { return 64 * lanes_; }

  void reset();
  /// Word `w` (0 <= w < lane_words()) of input/key signal `s`.
  void set_word(netlist::SignalId s, std::size_t w, std::uint64_t word);
  std::uint64_t get_word(netlist::SignalId s, std::size_t w) const {
    return values_[s * lanes_ + w];
  }
  /// Set pattern-lane p of signal s to a scalar bit.
  void set_bit(netlist::SignalId s, std::size_t p, bool bit);
  bool get_bit(netlist::SignalId s, std::size_t p) const {
    return (values_[s * lanes_ + p / 64] >> (p % 64)) & 1ULL;
  }

  void eval();
  void step();

 private:
  std::shared_ptr<const CompiledNetlist> compiled_;
  SimConfig config_;
  std::size_t lanes_;
  util::AlignedVec<std::uint64_t> values_;   // 64-byte-aligned SoA buffer
  util::AlignedVec<std::uint64_t> scratch_;
};

}  // namespace cl::sim
