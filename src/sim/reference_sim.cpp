#include "sim/reference_sim.hpp"

#include <stdexcept>

#include "netlist/topo.hpp"

namespace cl::sim {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

ReferenceSim::ReferenceSim(const Netlist& nl)
    : nl_(nl), order_(netlist::topo_order(nl)), values_(nl.size(), 0) {
  reset();
}

void ReferenceSim::reset() {
  for (SignalId s = 0; s < nl_.size(); ++s) values_[s] = 0;
  for (SignalId d : nl_.dffs()) {
    values_[d] = (nl_.dff_init(d) == netlist::DffInit::One) ? ~0ULL : 0ULL;
  }
}

void ReferenceSim::set(SignalId s, std::uint64_t word) {
  const GateType t = nl_.type(s);
  if (t != GateType::Input && t != GateType::KeyInput) {
    throw std::invalid_argument("ReferenceSim::set: not an input: " +
                                nl_.signal_name(s));
  }
  values_[s] = word;
}

void ReferenceSim::eval() {
  for (SignalId s : order_) {
    const netlist::Node& n = nl_.node(s);
    switch (n.type) {
      case GateType::Input:
      case GateType::KeyInput:
      case GateType::Dff:
        break;  // sources: already set
      case GateType::Const0: values_[s] = 0; break;
      case GateType::Const1: values_[s] = ~0ULL; break;
      case GateType::Buf: values_[s] = values_[n.fanins[0]]; break;
      case GateType::Not: values_[s] = ~values_[n.fanins[0]]; break;
      case GateType::And: {
        std::uint64_t v = ~0ULL;
        for (SignalId f : n.fanins) v &= values_[f];
        values_[s] = v;
        break;
      }
      case GateType::Nand: {
        std::uint64_t v = ~0ULL;
        for (SignalId f : n.fanins) v &= values_[f];
        values_[s] = ~v;
        break;
      }
      case GateType::Or: {
        std::uint64_t v = 0;
        for (SignalId f : n.fanins) v |= values_[f];
        values_[s] = v;
        break;
      }
      case GateType::Nor: {
        std::uint64_t v = 0;
        for (SignalId f : n.fanins) v |= values_[f];
        values_[s] = ~v;
        break;
      }
      case GateType::Xor: {
        std::uint64_t v = 0;
        for (SignalId f : n.fanins) v ^= values_[f];
        values_[s] = v;
        break;
      }
      case GateType::Xnor: {
        std::uint64_t v = 0;
        for (SignalId f : n.fanins) v ^= values_[f];
        values_[s] = ~v;
        break;
      }
      case GateType::Mux: {
        const std::uint64_t sel = values_[n.fanins[0]];
        const std::uint64_t a = values_[n.fanins[1]];
        const std::uint64_t b = values_[n.fanins[2]];
        values_[s] = (sel & b) | (~sel & a);
        break;
      }
    }
  }
}

void ReferenceSim::step() {
  std::vector<std::uint64_t> next;
  next.reserve(nl_.dffs().size());
  for (SignalId d : nl_.dffs()) next.push_back(values_[nl_.dff_input(d)]);
  std::size_t i = 0;
  for (SignalId d : nl_.dffs()) values_[d] = next[i++];
}

}  // namespace cl::sim
