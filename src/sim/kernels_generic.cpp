// Portable scalar kernel tier. This hosts the original PR 3 compiled-engine
// kernels: plain 64-bit word loops, with the hot lane counts instantiated at
// fixed width so the compiler can fully unroll them, and a dynamic fallback
// for everything else. Always compiled in; the baseline the SIMD tiers are
// cross-checked against.
#include "sim/kernels.hpp"
#include "sim/kernels_impl.hpp"

namespace cl::sim::kernels {

bool detail_generic_compiled_in() { return true; }

void eval_span_generic(const Instr* first, const Instr* last,
                       const netlist::SignalId* pool, std::uint64_t* values,
                       std::size_t lanes) {
  using impl::ScalarPolicy;
  switch (lanes) {
    case 1:
      impl::eval_span_impl<ScalarPolicy, 1>(first, last, pool, values, lanes);
      break;
    case 2:
      impl::eval_span_impl<ScalarPolicy, 2>(first, last, pool, values, lanes);
      break;
    case 4:
      impl::eval_span_impl<ScalarPolicy, 4>(first, last, pool, values, lanes);
      break;
    case 8:
      impl::eval_span_impl<ScalarPolicy, 8>(first, last, pool, values, lanes);
      break;
    case 16:
      impl::eval_span_impl<ScalarPolicy, 16>(first, last, pool, values, lanes);
      break;
    default:
      impl::eval_span_impl<ScalarPolicy, 0>(first, last, pool, values, lanes);
      break;
  }
}

}  // namespace cl::sim::kernels
