// Synthezza-like FSM benchmark suite for the Cute-Lock-Beh evaluation
// (paper Table III). The original Synthezza suite is a commercial FSM
// benchmark collection; these are deterministic random Mealy machines in
// the same three size tiers, carrying the paper's circuit names and the
// per-circuit (k, ki) locking parameters from Table III.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsm/stg.hpp"

namespace cl::benchgen {

struct FsmSpec {
  std::string name;
  const char* tier;  // "small" | "medium" | "large"
  int states;
  int inputs;
  int outputs;
  std::size_t lock_keys;  // k (Table III)
  std::size_t lock_bits;  // ki (Table III; clamped to 64)
};

const std::vector<FsmSpec>& synthezza_specs();

/// Find a spec by name; throws when unknown.
const FsmSpec& find_fsm_spec(const std::string& name);

/// Deterministic Mealy machine for the spec. Every state's input space is
/// partitioned into a few disjoint cubes (not minterms), like hand-written
/// FSM benchmarks.
fsm::Stg make_fsm(const FsmSpec& spec);

}  // namespace cl::benchgen
