// Deterministic structured sequential-circuit generator.
//
// The ISCAS'89 / ITC'99 benchmark files are not redistributable here, so the
// catalog (catalog.hpp) synthesizes stand-ins matching each circuit's
// published interface and size. The generator produces *word-structured*
// datapaths — registers grouped into words with word-level dataflow plus a
// small control FSM — because (a) that is what the real RT-level benchmarks
// look like after synthesis and (b) the DANA baseline must be able to earn a
// high NMI on the originals for the Table V comparison to be meaningful.
#pragma once

#include <cstdint>
#include <string>

#include "attack/dana.hpp"
#include "netlist/netlist.hpp"

namespace cl::benchgen {

struct SyntheticSpec {
  std::string name;
  std::size_t inputs = 4;
  std::size_t outputs = 4;
  std::size_t dffs = 16;
  std::size_t gates = 120;  // combinational gate target (approximate)
};

struct SyntheticCircuit {
  netlist::Netlist netlist;
  attack::RegisterGroups groups;  // DANA ground truth: words + control
};

/// Generate the circuit for `spec`; fully determined by (spec, seed).
SyntheticCircuit make_synthetic(const SyntheticSpec& spec, std::uint64_t seed);

}  // namespace cl::benchgen
