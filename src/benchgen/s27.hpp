// The real ISCAS'89 s27 benchmark (public domain), used by the paper's
// Table II validation exactly as published: 4 inputs, 1 output (G17),
// 3 flip-flops, 10 gates.
#pragma once

#include "netlist/netlist.hpp"

namespace cl::benchgen {

netlist::Netlist make_s27();

/// The raw .bench text (for IO tests and the examples).
const char* s27_bench_text();

}  // namespace cl::benchgen
