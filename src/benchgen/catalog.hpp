// Benchmark catalogs: ISCAS'89 and ITC'99 stand-ins with the published
// interface/size characteristics of each named circuit, plus the per-circuit
// Cute-Lock parameters (k, ki) the paper's Table IV uses. s27 is the real
// netlist; the rest are deterministic synthetic equivalents (see
// synthetic.hpp and DESIGN.md §1 for why the substitution is faithful).
//
// b18 and b19 generate at full published scale (the historical 1/4 and 1/8
// reduction was retired when simulation moved to the compiled engine); the
// mega suite adds synthetic circuits up to the million-gate range that
// exercise the sharded evaluation path. The small-profile bench filter
// (CUTELOCK_BENCH_SMALL=1) keeps all of these out of smoke runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "benchgen/synthetic.hpp"

namespace cl::benchgen {

struct CircuitSpec {
  std::string name;
  std::size_t inputs;
  std::size_t outputs;
  std::size_t dffs;
  std::size_t gates;
  // The paper's locking configuration for this circuit (Table IV).
  std::size_t lock_keys;   // k
  std::size_t lock_bits;   // ki
};

const std::vector<CircuitSpec>& iscas89_specs();
const std::vector<CircuitSpec>& itc99_specs();

/// Large synthetic circuits (up to >= 10^6 gates) for simulator/attack
/// scaling studies; syn1m crosses the sharded-evaluation threshold.
const std::vector<CircuitSpec>& mega_specs();

/// Find a spec by name across all suites; throws when unknown.
const CircuitSpec& find_spec(const std::string& name);

/// Build the circuit (exact s27; synthetic otherwise). Deterministic: the
/// seed is derived from the circuit name.
SyntheticCircuit make_circuit(const CircuitSpec& spec);
SyntheticCircuit make_circuit(const std::string& name);

}  // namespace cl::benchgen
