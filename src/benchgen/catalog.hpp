// Benchmark catalogs: ISCAS'89 and ITC'99 stand-ins with the published
// interface/size characteristics of each named circuit, plus the per-circuit
// Cute-Lock parameters (k, ki) the paper's Table IV uses. s27 is the real
// netlist; the rest are deterministic synthetic equivalents (see
// synthetic.hpp and DESIGN.md §1 for why the substitution is faithful).
//
// The two largest ITC'99 circuits (b18, b19) are generated at reduced gate
// count (factor noted in the spec table) to keep the full table harness
// runnable on a laptop; their interface and FF counts are preserved at a
// proportional scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "benchgen/synthetic.hpp"

namespace cl::benchgen {

struct CircuitSpec {
  std::string name;
  std::size_t inputs;
  std::size_t outputs;
  std::size_t dffs;
  std::size_t gates;
  // The paper's locking configuration for this circuit (Table IV).
  std::size_t lock_keys;   // k
  std::size_t lock_bits;   // ki
};

const std::vector<CircuitSpec>& iscas89_specs();
const std::vector<CircuitSpec>& itc99_specs();

/// Find a spec by name across both suites; throws when unknown.
const CircuitSpec& find_spec(const std::string& name);

/// Build the circuit (exact s27; synthetic otherwise). Deterministic: the
/// seed is derived from the circuit name.
SyntheticCircuit make_circuit(const CircuitSpec& spec);
SyntheticCircuit make_circuit(const std::string& name);

}  // namespace cl::benchgen
