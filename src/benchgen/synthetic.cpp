#include "benchgen/synthetic.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace cl::benchgen {

using netlist::DffInit;
using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

namespace {

/// Random 2-input combinational gate over two operands.
SignalId random_gate(Netlist& nl, util::Rng& rng, SignalId a, SignalId b,
                     const std::string& hint) {
  static constexpr GateType kinds[] = {GateType::And,  GateType::Or,
                                       GateType::Nand, GateType::Nor,
                                       GateType::Xor,  GateType::Xnor};
  const GateType t = kinds[rng.next_below(std::size(kinds))];
  return nl.add_gate(t, {a, b}, nl.fresh_name(hint));
}

}  // namespace

SyntheticCircuit make_synthetic(const SyntheticSpec& spec, std::uint64_t seed) {
  if (spec.inputs == 0 || spec.outputs == 0 || spec.dffs == 0) {
    throw std::invalid_argument("make_synthetic: degenerate spec");
  }
  util::Rng rng(seed);
  SyntheticCircuit out{Netlist(spec.name), {}};
  Netlist& nl = out.netlist;

  std::vector<SignalId> pis;
  for (std::size_t i = 0; i < spec.inputs; ++i) {
    pis.push_back(nl.add_input("pi" + std::to_string(i)));
  }

  // Control FSM: a few registers forming a twisted ring counter, one group.
  // n_ctrl is chosen so the remaining data FFs split into *uniform-width*
  // words: bit-sliced uniformity is what keeps the register graph's degree
  // structure word-regular, which the DANA baseline depends on.
  std::size_t n_ctrl = spec.dffs >= 6 ? 2 : 1;
  std::size_t chosen_width = 0;
  for (std::size_t width = 8; width >= 2 && chosen_width == 0; --width) {
    for (std::size_t c = (spec.dffs >= 6 ? 1 : 1);
         c <= std::min<std::size_t>(4, spec.dffs - 1); ++c) {
      const std::size_t data = spec.dffs - c;
      if (data >= width && data % width == 0) {
        n_ctrl = c;
        chosen_width = width;
        break;
      }
    }
  }
  if (chosen_width == 0) {  // tiny circuits: one word holds all data FFs
    n_ctrl = spec.dffs > 1 ? 1 : 1;
    chosen_width = std::max<std::size_t>(1, spec.dffs - n_ctrl);
  }
  std::vector<SignalId> ctrl;
  for (std::size_t i = 0; i < n_ctrl; ++i) {
    ctrl.push_back(nl.add_dff(netlist::k_no_signal,
                              i == 0 ? DffInit::One : DffInit::Zero,
                              "ctrl" + std::to_string(i)));
  }
  {
    attack::RegisterGroups::value_type group;
    for (SignalId c : ctrl) group.push_back(nl.signal_name(c));
    out.groups.push_back(std::move(group));
  }
  for (std::size_t i = 0; i < n_ctrl; ++i) {
    const SignalId prev = ctrl[(i + n_ctrl - 1) % n_ctrl];
    // Twist with an input so the controller reacts to stimuli.
    const SignalId d =
        (i == 0) ? nl.add_xor(prev, pis[0], nl.fresh_name("ctrl_d"))
                 : static_cast<SignalId>(prev);
    nl.set_dff_input(ctrl[i], d);
  }

  // Data words, all of width `chosen_width`.
  const std::size_t n_data = spec.dffs - n_ctrl;
  const std::size_t word_width = chosen_width;
  const std::size_t n_words = std::max<std::size_t>(1, n_data / word_width);
  std::vector<std::vector<SignalId>> words(n_words);
  for (std::size_t w = 0; w < n_words; ++w) {
    attack::RegisterGroups::value_type group;
    for (std::size_t b = 0; b < word_width && w * word_width + b < n_data; ++b) {
      const std::string name =
          "w" + std::to_string(w) + "_b" + std::to_string(b);
      words[w].push_back(nl.add_dff(netlist::k_no_signal, DffInit::Zero, name));
      group.push_back(name);
    }
    out.groups.push_back(std::move(group));
  }

  // Per-FF next-state logic. The *wiring shape* is fixed per word (bit b of
  // word w always reads bits b and b+1 of its source word, bit b of its
  // extra word, a sliding input tap, a control line, and its own feedback);
  // only the gate types vary per bit. This bit-sliced regularity is what
  // real RTL synthesizes to, and it is what lets DANA earn its high
  // baseline NMI on the unlocked circuits.
  const std::size_t output_budget = 2 * spec.outputs;
  const std::size_t per_ff = std::max<std::size_t>(
      1, (spec.gates > output_budget ? spec.gates - output_budget : spec.gates) /
             std::max<std::size_t>(1, n_data));
  for (std::size_t w = 0; w < n_words; ++w) {
    // Word-level dataflow, chosen once per word: ring source, an optional
    // extra source word, 2-3 source taps, optional control/feedback reads.
    // The per-word variety breaks inter-word symmetry (so dataflow analysis
    // has something to find) while the per-bit wiring stays uniform (so
    // words stay coherent registers).
    const std::size_t src = (w + n_words - 1) % n_words;
    const std::size_t extra = rng.next_below(n_words);
    const std::size_t pi_offset = rng.next_below(pis.size());
    const std::size_t src_taps = 2 + rng.next_below(2);  // 2 or 3
    const bool use_extra = rng.chance(1, 2);
    // Word 0 always reads the controller so the control FSM stays live even
    // in single-word circuits.
    const bool use_ctrl = (w == 0) || rng.chance(2, 3);
    const bool use_own = rng.chance(1, 2);
    for (std::size_t b = 0; b < words[w].size(); ++b) {
      const auto& sw = words[src];
      const auto& ew = words[extra];
      std::vector<SignalId> operands;
      for (std::size_t t = 1; t < src_taps; ++t) {
        operands.push_back(sw[(b + t) % sw.size()]);
      }
      if (use_extra) operands.push_back(ew[b % ew.size()]);
      operands.push_back(pis[(b + pi_offset) % pis.size()]);
      if (use_ctrl) operands.push_back(ctrl[0]);
      if (use_own) operands.push_back(words[w][b]);
      SignalId acc = sw[b % sw.size()];
      for (std::size_t g = 0; g < per_ff; ++g) {
        acc = random_gate(nl, rng, acc, operands[g % operands.size()], "g");
      }
      nl.set_dff_input(words[w][b], acc);
    }
  }

  // Outputs: small observation trees over random state bits and inputs.
  for (std::size_t o = 0; o < spec.outputs; ++o) {
    const auto& wa = words[rng.next_below(n_words)];
    const auto& wb = words[rng.next_below(n_words)];
    const SignalId a = wa[rng.next_below(wa.size())];
    const SignalId b = wb[rng.next_below(wb.size())];
    const SignalId t = random_gate(nl, rng, a, b, "po_t");
    const SignalId po = nl.add_gate(GateType::Buf, {t}, "po" + std::to_string(o));
    nl.add_output(po);
  }

  nl.check();
  return out;
}

}  // namespace cl::benchgen
