#include "benchgen/catalog.hpp"

#include <stdexcept>

#include "benchgen/s27.hpp"
#include "util/fnv.hpp"

namespace cl::benchgen {

namespace {

std::uint64_t name_seed(const std::string& name) { return util::fnv1a(name); }

}  // namespace

const std::vector<CircuitSpec>& iscas89_specs() {
  // Published interface sizes of the ISCAS'89 circuits used in Table IV,
  // with the paper's (k, ki) per row.
  static const std::vector<CircuitSpec> specs = {
      //  name      PI   PO   DFF   gates    k   ki
      {"s27",       4,   1,    3,     10,    4,   2},
      {"s298",      3,   6,   14,    119,    2,   3},
      {"s349",      9,  11,   15,    161,    4,   9},
      {"s510",     19,   7,    6,    211,    8,  19},
      {"s641",     35,  24,   19,    379,    8,  35},
      {"s713",     35,  23,   19,    393,    8,  35},
      {"s832",     18,  19,    5,    287,    8,  18},
      {"s953",     16,  23,   29,    395,    4,  15},
      {"s1196",    14,  14,   18,    529,    4,  14},
      {"s1488",     8,  19,    6,    653,    2,   8},
      {"s5378",    35,  49,  179,   2779,    8,  35},
      {"s9234",    36,  39,  211,   5597,    8,  19},
      {"s13207",   62, 152,  638,   7951,    8,  31},
      {"s15850",   77, 150,  534,   9772,    4,  14},
      {"s35932",   35, 320, 1728,  16065,    8,  35},
  };
  return specs;
}

const std::vector<CircuitSpec>& itc99_specs() {
  // ITC'99 sizes, b18/b19 at full published gate and FF counts (the
  // compiled simulation engine removed the need for the historical
  // reduction).
  static const std::vector<CircuitSpec> specs = {
      //  name   PI   PO   DFF   gates     k   ki
      {"b01",    2,   2,    5,     49,     2,   2},
      {"b02",    1,   1,    4,     28,     2,   2},
      {"b03",    4,   4,   30,    160,     2,   4},
      {"b04",   11,   8,   66,    737,     4,  11},
      {"b05",    1,  36,   34,    998,     2,   2},
      {"b06",    2,   6,    9,     56,     2,   1},
      {"b07",    1,   8,   49,    441,     2,   2},
      {"b08",    9,   4,   21,    183,     4,   9},
      {"b09",    1,   1,   28,    170,     2,   1},
      {"b10",   11,   6,   17,    206,     4,  11},
      {"b11",    7,   6,   31,    770,     2,   7},
      {"b12",    5,   6,  121,   1076,     2,   5},
      {"b14",   32,  54,  245,  10098,     8,  32},
      {"b15",   36,  70,  449,   8922,    16,  36},
      {"b17",   37,  97, 1415,  32326,    16,  37},
      {"b18",   36,  23, 3320, 114620,    16,  36},
      {"b19",   24,  30, 6640, 231320,     8,  24},
      {"b20",   32,  22,  490,  20226,     8,  32},
      {"b21",   32,  22,  490,  20571,     8,  32},
      {"b22",   32,  22,  703,  29951,     8,  32},
  };
  return specs;
}

const std::vector<CircuitSpec>& mega_specs() {
  // Synthetic scaling suite: word-structured datapaths like the rest of the
  // catalog, sized so syn1m compiles to >= 10^6 combinational gates and
  // evaluates through the sharded level-parallel path.
  static const std::vector<CircuitSpec> specs = {
      //  name      PI   PO    DFF     gates    k   ki
      {"syn64k",    32,  32,  1024,    65536,   8,  32},
      {"syn256k",   48,  48,  2048,   262144,   8,  48},
      {"syn1m",     64,  64,  4096,  1100000,   8,  64},
  };
  return specs;
}

const CircuitSpec& find_spec(const std::string& name) {
  for (const CircuitSpec& s : iscas89_specs()) {
    if (s.name == name) return s;
  }
  for (const CircuitSpec& s : itc99_specs()) {
    if (s.name == name) return s;
  }
  for (const CircuitSpec& s : mega_specs()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("find_spec: unknown circuit " + name);
}

SyntheticCircuit make_circuit(const CircuitSpec& spec) {
  if (spec.name == "s27") {
    SyntheticCircuit out{make_s27(), {}};
    out.groups = {{"G5"}, {"G6"}, {"G7"}};
    return out;
  }
  SyntheticSpec s;
  s.name = spec.name;
  s.inputs = spec.inputs;
  s.outputs = spec.outputs;
  s.dffs = spec.dffs;
  s.gates = spec.gates;
  return make_synthetic(s, name_seed(spec.name));
}

SyntheticCircuit make_circuit(const std::string& name) {
  return make_circuit(find_spec(name));
}

}  // namespace cl::benchgen
