#include "benchgen/fsm_suite.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace cl::benchgen {

namespace {

std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c)) * 0x9e37ULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Split the full input space into `target` disjoint cubes by recursive
/// variable splitting.
std::vector<logic::Cube> partition_cubes(util::Rng& rng, int num_inputs,
                                         std::size_t target) {
  std::vector<logic::Cube> cubes{logic::Cube{}};  // universal cube
  while (cubes.size() < target) {
    // Pick a cube with a free variable and split it.
    std::vector<std::size_t> splittable;
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      if (cubes[i].literal_count() < num_inputs) splittable.push_back(i);
    }
    if (splittable.empty()) break;
    const std::size_t ci = splittable[rng.next_below(splittable.size())];
    std::vector<int> free_vars;
    for (int v = 0; v < num_inputs; ++v) {
      if (((cubes[ci].mask >> v) & 1u) == 0) free_vars.push_back(v);
    }
    const int var = free_vars[rng.next_below(free_vars.size())];
    logic::Cube zero = cubes[ci];
    zero.mask |= 1u << var;
    logic::Cube one = zero;
    one.value |= 1u << var;
    cubes[ci] = zero;
    cubes.push_back(one);
  }
  return cubes;
}

}  // namespace

const std::vector<FsmSpec>& synthezza_specs() {
  static const std::vector<FsmSpec> specs = {
      // name        tier      st  in out    k   ki   (k, ki from Table III)
      {"bcomp",     "small",   24,  8, 39,   6,  18},
      {"bech",      "small",   14,  3,  5,   6,  18},
      {"bridge",    "small",   12,  3,  4,   5,  16},
      {"cat",       "small",   10,  2,  3,   3,  11},
      {"checker9",  "small",    9,  2,  2,   3,  10},
      {"cpu",       "small",   16,  4,  6,   4,  14},
      {"dmac",      "small",    8,  3,  4,   2,   7},
      {"e10",       "small",   10,  2,  3,   3,  10},
      {"e15",       "small",   15,  3,  4,   4,  13},
      {"e16",       "small",   16,  3,  4,   4,  13},
      {"e161",      "small",   16,  4,  5,   5,  16},
      {"e17",       "small",   12,  2,  3,   2,   8},
      {"acdl",      "medium",  28,  4,  8,   5,  16},
      {"alf",       "medium",  32,  5, 10,   2,  31},
      {"amtz",      "medium",  36,  4,  9,   7,  23},
      {"ball",      "medium",  40,  5, 12,   4,  44},
      {"bens",      "medium",  30,  4,  8,   7,  21},
      {"berg",      "medium",  34,  4,  7,   7,  21},
      {"bib",       "medium",  32,  4,  8,   7,  21},
      {"big",       "medium",  36,  5, 10,   6,  18},
      {"bs",        "medium",  30,  4,  6,   6,  19},
      {"codec",     "medium",  26,  3,  8,   2,   4},
      {"codec12",   "medium",  40,  5, 12,   9,  28},
      {"cow",       "medium",  44,  5, 10,   6,  49},
      {"cyr",       "medium",  34,  4,  8,   6,  20},
      {"dav",       "medium",  32,  4,  8,   6,  18},
      {"doron",     "medium",  38,  5,  9,   7,  22},
      {"absurd",    "large",  128,  6, 16,  21,  64},  // ki 65 in the paper,
                                                       // clamped to 64 bits
      {"bulln",     "large",  120,  6, 14,  20,  61},
      {"camel",     "large",  112,  6, 12,  19,  59},
      {"exxm",      "large",   96,  5, 12,  15,  47},
      {"lion",      "large",  108,  6, 12,  18,  55},
      {"tiger",     "large",  104,  6, 12,  17,  51},
  };
  return specs;
}

const FsmSpec& find_fsm_spec(const std::string& name) {
  for (const FsmSpec& s : synthezza_specs()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("find_fsm_spec: unknown FSM " + name);
}

fsm::Stg make_fsm(const FsmSpec& spec) {
  util::Rng rng(name_seed(spec.name));
  fsm::Stg stg(spec.inputs, spec.outputs);
  for (int s = 0; s < spec.states; ++s) {
    stg.add_state("S" + std::to_string(s));
  }
  stg.set_initial(0);
  const std::uint64_t out_space =
      spec.outputs >= 64 ? ~0ULL : ((1ULL << spec.outputs) - 1);
  for (int s = 0; s < spec.states; ++s) {
    // 2..6 disjoint cubes per state; a random subset transitions, the rest
    // hold implicitly (KISS semantics).
    const std::size_t n_cubes = 2 + rng.next_below(5);
    const auto cubes = partition_cubes(rng, spec.inputs, n_cubes);
    for (const logic::Cube& cube : cubes) {
      if (rng.chance(1, 8)) continue;  // leave an implicit hold
      // Bias transitions toward a connected ring so everything stays
      // reachable, with random long jumps mixed in.
      const int to = rng.chance(1, 3)
                         ? static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(spec.states)))
                         : (s + 1) % spec.states;
      const std::uint64_t output = rng.next_u64() & out_space;
      stg.add_transition(s, cube, to, output);
    }
  }
  stg.check();
  return stg;
}

}  // namespace cl::benchgen
