#include "cnf/unroller.hpp"

#include <stdexcept>

#include "netlist/topo.hpp"

namespace cl::cnf {

using netlist::DffInit;
using netlist::Netlist;
using netlist::SignalId;
using sat::Var;

Unroller::Unroller(sat::Solver& solver, const Netlist& nl, KeyMode key_mode,
                   bool symbolic_initial_state)
    : solver_(solver),
      nl_(nl),
      order_(netlist::topo_order(nl)),
      key_mode_(key_mode),
      symbolic_init_(symbolic_initial_state) {
  if (key_mode_ == KeyMode::Static) {
    static_keys_.reserve(nl.key_inputs().size());
    for (std::size_t i = 0; i < nl.key_inputs().size(); ++i) {
      static_keys_.push_back(solver_.new_var());
    }
  }
  if (symbolic_init_) {
    initial_state_.reserve(nl.dffs().size());
    for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
      initial_state_.push_back(solver_.new_var());
    }
  }
}

void Unroller::extend_to(std::size_t n) {
  while (frames_.size() < n) {
    const std::size_t t = frames_.size();
    FrameSources sources;
    // State: frame 0 from init (constants or symbolic); later frames wired
    // to the previous frame's D-pin variables.
    if (t == 0) {
      if (symbolic_init_) {
        sources.states = initial_state_;
      } else {
        sources.states.reserve(nl_.dffs().size());
        for (SignalId d : nl_.dffs()) {
          const Var v = solver_.new_var();
          // X power-up is modelled as free (unconstrained) — the attack may
          // choose it, which only makes the attacker stronger.
          if (nl_.dff_init(d) == DffInit::Zero) {
            encode_const(solver_, v, false);
          } else if (nl_.dff_init(d) == DffInit::One) {
            encode_const(solver_, v, true);
          }
          sources.states.push_back(v);
        }
      }
    } else {
      const FrameVars& prev = frames_[t - 1];
      sources.states.reserve(nl_.dffs().size());
      for (SignalId d : nl_.dffs()) {
        sources.states.push_back(prev.var[nl_.dff_input(d)]);
      }
    }
    // Keys.
    if (key_mode_ == KeyMode::Static) {
      sources.keys = static_keys_;
    } else {
      std::vector<Var> keys;
      keys.reserve(nl_.key_inputs().size());
      for (std::size_t i = 0; i < nl_.key_inputs().size(); ++i) {
        keys.push_back(solver_.new_var());
      }
      per_frame_keys_.push_back(keys);
      sources.keys = std::move(keys);
    }
    // Inputs: fresh per frame.
    FrameVars fv = encode_frame(solver_, nl_, std::move(sources), order_);
    std::vector<Var> ins;
    ins.reserve(nl_.inputs().size());
    for (SignalId i : nl_.inputs()) ins.push_back(fv.var[i]);
    frame_inputs_.push_back(std::move(ins));
    frames_.push_back(std::move(fv));
  }
}

const std::vector<Var>& Unroller::key_vars(std::size_t t) const {
  if (key_mode_ == KeyMode::Static) return static_keys_;
  return per_frame_keys_.at(t);
}

std::vector<Var> Unroller::output_vars(std::size_t t) const {
  const FrameVars& fv = frames_.at(t);
  std::vector<Var> out;
  out.reserve(nl_.outputs().size());
  for (SignalId o : nl_.outputs()) out.push_back(fv.var[o]);
  return out;
}

std::vector<Var> Unroller::next_state_vars(std::size_t t) const {
  const FrameVars& fv = frames_.at(t);
  std::vector<Var> out;
  out.reserve(nl_.dffs().size());
  for (SignalId d : nl_.dffs()) out.push_back(fv.var[nl_.dff_input(d)]);
  return out;
}

}  // namespace cl::cnf
