// Sequential time-frame expansion ("unrolling") of a netlist into a solver.
//
// Frame t's state variables are frame t-1's next-state variables; frame 0's
// state comes from the DFF power-up values (constants), or from fresh
// symbolic variables when `symbolic_initial_state` is set (the RANE threat
// model, where reset state is part of the secret).
//
// Key handling: `KeyMode::Static` shares one set of key variables across all
// frames (the assumption every oracle-guided attack formulation makes);
// `KeyMode::PerFrame` gives each frame its own key variables (used by
// ablation experiments to show what an attacker *would* need to model to
// break time-based keys).
#pragma once

#include <vector>

#include "cnf/encoder.hpp"

namespace cl::cnf {

enum class KeyMode { Static, PerFrame };

class Unroller {
 public:
  Unroller(sat::Solver& solver, const netlist::Netlist& nl,
           KeyMode key_mode = KeyMode::Static,
           bool symbolic_initial_state = false);

  /// Ensure at least `n` frames exist (frames are created on demand).
  void extend_to(std::size_t n);

  std::size_t num_frames() const { return frames_.size(); }

  /// Variables of frame t (valid after extend_to(t+1)).
  const FrameVars& frame(std::size_t t) const { return frames_.at(t); }

  /// Input variables of frame t, parallel to nl.inputs().
  const std::vector<sat::Var>& input_vars(std::size_t t) const {
    return frame_inputs_.at(t);
  }

  /// Key variables: for Static mode the same vector for every frame.
  const std::vector<sat::Var>& key_vars(std::size_t t = 0) const;

  /// Output variables of frame t, parallel to nl.outputs().
  std::vector<sat::Var> output_vars(std::size_t t) const;

  /// Next-state variables computed by frame t (the D-pin vars).
  std::vector<sat::Var> next_state_vars(std::size_t t) const;

  /// Initial-state variables (only when symbolic_initial_state).
  const std::vector<sat::Var>& initial_state_vars() const { return initial_state_; }

  const netlist::Netlist& netlist() const { return nl_; }

 private:
  sat::Solver& solver_;
  const netlist::Netlist& nl_;
  std::vector<netlist::SignalId> order_;  // levelized once, reused per frame
  KeyMode key_mode_;
  bool symbolic_init_;
  std::vector<sat::Var> static_keys_;
  std::vector<std::vector<sat::Var>> per_frame_keys_;
  std::vector<sat::Var> initial_state_;
  std::vector<FrameVars> frames_;
  std::vector<std::vector<sat::Var>> frame_inputs_;
};

}  // namespace cl::cnf
