// Tseitin encoding of a netlist's combinational core into a SAT solver.
//
// One "frame" is one copy of the combinational logic: the caller supplies
// SAT variables for the sources (primary inputs, key inputs, DFF outputs) and
// the encoder allocates variables and clauses for every gate. Next-state
// values are read through the variables of the DFF D-pin signals.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace cl::cnf {

/// Variables for one combinational frame, indexed by SignalId.
struct FrameVars {
  std::vector<sat::Var> var;  // size == netlist.size()

  sat::Var operator[](netlist::SignalId s) const { return var[s]; }
};

/// Source variable assignment for a frame. Any of the vectors may be left
/// empty to let the encoder allocate fresh variables for that port class.
struct FrameSources {
  std::vector<sat::Var> inputs;      // parallel to nl.inputs()
  std::vector<sat::Var> keys;        // parallel to nl.key_inputs()
  std::vector<sat::Var> states;      // parallel to nl.dffs()
};

/// Encode one combinational frame of `nl` into `solver`. Gate semantics are
/// encoded exactly (AND/OR/NAND/NOR/XOR/XNOR/MUX/NOT/BUF/constants).
FrameVars encode_frame(sat::Solver& solver, const netlist::Netlist& nl,
                       FrameSources sources = {});

/// Same, walking a caller-provided topological order (netlist::topo_order).
/// Deep unrollings encode hundreds of frames of one netlist; levelizing once
/// and passing the order here removes the per-frame recomputation. The order
/// must cover every node of `nl` (netlist::topo is the single source).
FrameVars encode_frame(sat::Solver& solver, const netlist::Netlist& nl,
                       FrameSources sources,
                       const std::vector<netlist::SignalId>& order);

/// Clause helpers shared with the miter builders.
void encode_and(sat::Solver& s, sat::Var y, const std::vector<sat::Var>& ins);
void encode_or(sat::Solver& s, sat::Var y, const std::vector<sat::Var>& ins);
void encode_xor2(sat::Solver& s, sat::Var y, sat::Var a, sat::Var b);
void encode_eq(sat::Solver& s, sat::Var a, sat::Var b);
void encode_mux(sat::Solver& s, sat::Var y, sat::Var sel, sat::Var a, sat::Var b);
void encode_const(sat::Solver& s, sat::Var y, bool value);

}  // namespace cl::cnf
