// Miter constructions for oracle-guided attacks.
//
// SequentialMiter: two unrolled copies of a locked circuit with independent
// static key vectors KA/KB but shared per-frame inputs, plus per-depth
// "outputs differ within d frames" indicator variables. Solving with the
// indicator assumed true yields a discriminating input sequence (DIS).
//
// constrain_key_on_sequence: the oracle-consistency constraint — one fresh
// unrolled copy with inputs fixed to a concrete sequence and outputs fixed to
// the oracle's response, evaluated under a given key vector.
#pragma once

#include <vector>

#include "cnf/unroller.hpp"
#include "sim/sequence.hpp"

namespace cl::cnf {

class SequentialMiter {
 public:
  /// `symbolic_initial_state`: model the reset state as unknown-but-shared
  /// between the two copies (the RANE threat model) instead of fixing it to
  /// the DFF power-up values.
  SequentialMiter(sat::Solver& solver, const netlist::Netlist& locked,
                  bool symbolic_initial_state = false);

  /// Unroll both copies to `depth` frames.
  void extend_to(std::size_t depth);

  std::size_t depth() const { return frames_a_.size(); }

  /// Literal that is true iff some output differs in frames [0, depth).
  /// Valid after extend_to(depth).
  sat::Lit diff_within(std::size_t depth) const;

  const std::vector<sat::Var>& keys_a() const { return keys_a_; }
  const std::vector<sat::Var>& keys_b() const { return keys_b_; }

  /// Shared input variables of frame t.
  const std::vector<sat::Var>& inputs(std::size_t t) const { return inputs_.at(t); }

  /// After a Sat solve: the concrete input sequence of the first `depth`
  /// frames from the model.
  std::vector<sim::BitVec> extract_inputs(std::size_t depth) const;

  /// After a Sat solve: concrete key vector from the model (copy A or B).
  sim::BitVec extract_key_a() const;
  sim::BitVec extract_key_b() const;

  /// Shared symbolic reset-state variables (empty unless enabled).
  const std::vector<sat::Var>& initial_state_vars() const { return init_state_; }

 private:
  sat::Solver& solver_;
  const netlist::Netlist& nl_;
  std::vector<netlist::SignalId> order_;  // levelized once, reused per frame
  bool symbolic_init_;
  std::vector<sat::Var> keys_a_;
  std::vector<sat::Var> keys_b_;
  std::vector<sat::Var> init_state_;            // shared when symbolic
  std::vector<std::vector<sat::Var>> inputs_;   // per frame
  std::vector<FrameVars> frames_a_;
  std::vector<FrameVars> frames_b_;
  std::vector<sat::Var> frame_diff_;            // per frame
  std::vector<sat::Var> cumulative_diff_;       // per depth (index d-1)
};

/// Cross-circuit bounded equivalence miter: circuit A (may have key inputs,
/// exposed as variables) against circuit B (the reference; must be key-free)
/// with shared per-frame primary inputs, matched positionally. Used to
/// verify candidate keys exactly up to a bound.
class EquivalenceMiter {
 public:
  EquivalenceMiter(sat::Solver& solver, const netlist::Netlist& a,
                   const netlist::Netlist& b);

  void extend_to(std::size_t depth);
  std::size_t depth() const { return frames_a_.size(); }

  /// Literal: some output differs within [0, depth).
  sat::Lit diff_within(std::size_t depth) const;

  const std::vector<sat::Var>& keys_a() const { return keys_a_; }

  /// After Sat: the distinguishing input sequence.
  std::vector<sim::BitVec> extract_inputs(std::size_t depth) const;

 private:
  sat::Solver& solver_;
  const netlist::Netlist& a_;
  const netlist::Netlist& b_;
  std::vector<netlist::SignalId> order_a_;  // levelized once per circuit
  std::vector<netlist::SignalId> order_b_;
  std::vector<sat::Var> keys_a_;
  std::vector<std::vector<sat::Var>> inputs_;
  std::vector<FrameVars> frames_a_;
  std::vector<FrameVars> frames_b_;
  std::vector<sat::Var> cumulative_diff_;
};

/// Add the constraint: running `nl` for inputs.size() cycles from the reset
/// state with key variables `key_vars` (held static) and the given concrete
/// input sequence produces exactly `outputs`. This is the DIP-consistency
/// clause set of the oracle-guided attack loop. When `init_vars` is given,
/// the run starts from those shared symbolic state variables instead of the
/// power-up constants (RANE threat model).
void constrain_key_on_sequence(sat::Solver& solver, const netlist::Netlist& nl,
                               const std::vector<sat::Var>& key_vars,
                               const std::vector<sim::BitVec>& inputs,
                               const std::vector<sim::BitVec>& outputs,
                               const std::vector<sat::Var>* init_vars = nullptr);

/// Extract the model values of `vars` as a BitVec.
sim::BitVec extract_bits(const sat::Solver& solver,
                         const std::vector<sat::Var>& vars);

}  // namespace cl::cnf
