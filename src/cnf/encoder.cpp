#include "cnf/encoder.hpp"

#include <stdexcept>

#include "netlist/topo.hpp"

namespace cl::cnf {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;
using sat::Lit;
using sat::Solver;
using sat::Var;

void encode_and(Solver& s, Var y, const std::vector<Var>& ins) {
  // y -> ai ; (a1 & ... & an) -> y
  std::vector<Lit> big;
  big.reserve(ins.size() + 1);
  for (Var a : ins) {
    s.add_binary(sat::neg(y), sat::pos(a));
    big.push_back(sat::neg(a));
  }
  big.push_back(sat::pos(y));
  s.add_clause(std::move(big));
}

void encode_or(Solver& s, Var y, const std::vector<Var>& ins) {
  std::vector<Lit> big;
  big.reserve(ins.size() + 1);
  for (Var a : ins) {
    s.add_binary(sat::pos(y), sat::neg(a));
    big.push_back(sat::pos(a));
  }
  big.push_back(sat::neg(y));
  s.add_clause(std::move(big));
}

void encode_xor2(Solver& s, Var y, Var a, Var b) {
  s.add_ternary(sat::neg(y), sat::pos(a), sat::pos(b));
  s.add_ternary(sat::neg(y), sat::neg(a), sat::neg(b));
  s.add_ternary(sat::pos(y), sat::neg(a), sat::pos(b));
  s.add_ternary(sat::pos(y), sat::pos(a), sat::neg(b));
}

void encode_eq(Solver& s, Var a, Var b) {
  s.add_binary(sat::neg(a), sat::pos(b));
  s.add_binary(sat::pos(a), sat::neg(b));
}

void encode_mux(Solver& s, Var y, Var sel, Var a, Var b) {
  // sel=0 -> y=a ; sel=1 -> y=b
  s.add_ternary(sat::pos(sel), sat::neg(a), sat::pos(y));
  s.add_ternary(sat::pos(sel), sat::pos(a), sat::neg(y));
  s.add_ternary(sat::neg(sel), sat::neg(b), sat::pos(y));
  s.add_ternary(sat::neg(sel), sat::pos(b), sat::neg(y));
}

void encode_const(Solver& s, Var y, bool value) {
  s.add_unit(Lit(y, !value));
}

FrameVars encode_frame(Solver& solver, const Netlist& nl,
                       FrameSources sources) {
  return encode_frame(solver, nl, std::move(sources),
                      netlist::topo_order(nl));
}

FrameVars encode_frame(Solver& solver, const Netlist& nl, FrameSources sources,
                       const std::vector<SignalId>& order) {
  // Allocate or validate source variables.
  const auto fill = [&solver](std::vector<Var>& vars, std::size_t need) {
    if (vars.empty()) {
      vars.reserve(need);
      for (std::size_t i = 0; i < need; ++i) vars.push_back(solver.new_var());
    } else if (vars.size() != need) {
      throw std::invalid_argument("encode_frame: source var arity mismatch");
    }
  };
  fill(sources.inputs, nl.inputs().size());
  fill(sources.keys, nl.key_inputs().size());
  fill(sources.states, nl.dffs().size());

  FrameVars frame;
  frame.var.assign(nl.size(), -1);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    frame.var[nl.inputs()[i]] = sources.inputs[i];
  }
  for (std::size_t i = 0; i < nl.key_inputs().size(); ++i) {
    frame.var[nl.key_inputs()[i]] = sources.keys[i];
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    frame.var[nl.dffs()[i]] = sources.states[i];
  }

  for (SignalId id : order) {
    const netlist::Node& n = nl.node(id);
    if (n.type == GateType::Input || n.type == GateType::KeyInput ||
        n.type == GateType::Dff) {
      continue;
    }
    switch (n.type) {
      case GateType::Const0:
      case GateType::Const1: {
        const Var y = solver.new_var();
        encode_const(solver, y, n.type == GateType::Const1);
        frame.var[id] = y;
        break;
      }
      case GateType::Buf:
        frame.var[id] = frame.var[n.fanins[0]];
        break;
      case GateType::Not: {
        const Var y = solver.new_var();
        const Var a = frame.var[n.fanins[0]];
        solver.add_binary(sat::neg(y), sat::neg(a));
        solver.add_binary(sat::pos(y), sat::pos(a));
        frame.var[id] = y;
        break;
      }
      case GateType::And:
      case GateType::Nand: {
        const Var y = solver.new_var();
        std::vector<Var> ins;
        ins.reserve(n.fanins.size());
        for (SignalId f : n.fanins) ins.push_back(frame.var[f]);
        if (n.type == GateType::And) {
          encode_and(solver, y, ins);
          frame.var[id] = y;
        } else {
          encode_and(solver, y, ins);
          const Var ny = solver.new_var();
          solver.add_binary(sat::neg(ny), sat::neg(y));
          solver.add_binary(sat::pos(ny), sat::pos(y));
          frame.var[id] = ny;
        }
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        const Var y = solver.new_var();
        std::vector<Var> ins;
        ins.reserve(n.fanins.size());
        for (SignalId f : n.fanins) ins.push_back(frame.var[f]);
        if (n.type == GateType::Or) {
          encode_or(solver, y, ins);
          frame.var[id] = y;
        } else {
          encode_or(solver, y, ins);
          const Var ny = solver.new_var();
          solver.add_binary(sat::neg(ny), sat::neg(y));
          solver.add_binary(sat::pos(ny), sat::pos(y));
          frame.var[id] = ny;
        }
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        // Chain pairwise XORs.
        Var acc = frame.var[n.fanins[0]];
        for (std::size_t k = 1; k < n.fanins.size(); ++k) {
          const Var y = solver.new_var();
          encode_xor2(solver, y, acc, frame.var[n.fanins[k]]);
          acc = y;
        }
        if (n.type == GateType::Xnor) {
          const Var ny = solver.new_var();
          solver.add_binary(sat::neg(ny), sat::neg(acc));
          solver.add_binary(sat::pos(ny), sat::pos(acc));
          acc = ny;
        }
        frame.var[id] = acc;
        break;
      }
      case GateType::Mux: {
        const Var y = solver.new_var();
        encode_mux(solver, y, frame.var[n.fanins[0]], frame.var[n.fanins[1]],
                   frame.var[n.fanins[2]]);
        frame.var[id] = y;
        break;
      }
      default:
        throw std::logic_error("encode_frame: unexpected gate type");
    }
  }
  return frame;
}

}  // namespace cl::cnf
