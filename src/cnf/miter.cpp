#include "cnf/miter.hpp"

#include <stdexcept>

#include "netlist/topo.hpp"

namespace cl::cnf {

using netlist::DffInit;
using netlist::Netlist;
using netlist::SignalId;
using sat::Lit;
using sat::Solver;
using sat::Var;

SequentialMiter::SequentialMiter(Solver& solver, const Netlist& locked,
                                 bool symbolic_initial_state)
    : solver_(solver),
      nl_(locked),
      order_(netlist::topo_order(locked)),
      symbolic_init_(symbolic_initial_state) {
  keys_a_.reserve(nl_.key_inputs().size());
  keys_b_.reserve(nl_.key_inputs().size());
  for (std::size_t i = 0; i < nl_.key_inputs().size(); ++i) {
    keys_a_.push_back(solver_.new_var());
    keys_b_.push_back(solver_.new_var());
  }
  if (symbolic_init_) {
    init_state_.reserve(nl_.dffs().size());
    for (std::size_t i = 0; i < nl_.dffs().size(); ++i) {
      init_state_.push_back(solver_.new_var());
    }
  }
}

void SequentialMiter::extend_to(std::size_t depth) {
  while (frames_a_.size() < depth) {
    const std::size_t t = frames_a_.size();
    // Shared inputs for this frame.
    std::vector<Var> ins;
    ins.reserve(nl_.inputs().size());
    for (std::size_t i = 0; i < nl_.inputs().size(); ++i) {
      ins.push_back(solver_.new_var());
    }
    inputs_.push_back(ins);

    const auto make_frame = [&](std::vector<FrameVars>& frames,
                                const std::vector<Var>& keys) {
      FrameSources src;
      src.inputs = ins;
      src.keys = keys;
      if (t == 0) {
        if (symbolic_init_) {
          src.states = init_state_;
        } else {
          src.states.reserve(nl_.dffs().size());
          for (SignalId d : nl_.dffs()) {
            const Var v = solver_.new_var();
            if (nl_.dff_init(d) == DffInit::Zero) encode_const(solver_, v, false);
            else if (nl_.dff_init(d) == DffInit::One) encode_const(solver_, v, true);
            src.states.push_back(v);
          }
        }
      } else {
        const FrameVars& prev = frames[t - 1];
        src.states.reserve(nl_.dffs().size());
        for (SignalId d : nl_.dffs()) {
          src.states.push_back(prev.var[nl_.dff_input(d)]);
        }
      }
      frames.push_back(encode_frame(solver_, nl_, std::move(src), order_));
    };
    make_frame(frames_a_, keys_a_);
    make_frame(frames_b_, keys_b_);

    // diff_t <-> OR over outputs of (a_o XOR b_o)
    std::vector<Var> xors;
    xors.reserve(nl_.outputs().size());
    for (SignalId o : nl_.outputs()) {
      const Var x = solver_.new_var();
      encode_xor2(solver_, x, frames_a_[t].var[o], frames_b_[t].var[o]);
      xors.push_back(x);
    }
    const Var diff = solver_.new_var();
    if (xors.empty()) {
      encode_const(solver_, diff, false);
    } else {
      encode_or(solver_, diff, xors);
    }
    frame_diff_.push_back(diff);

    // cumulative_diff up to and including this frame.
    const Var cum = solver_.new_var();
    if (t == 0) {
      encode_eq(solver_, cum, diff);
    } else {
      encode_or(solver_, cum, {cumulative_diff_[t - 1], diff});
    }
    cumulative_diff_.push_back(cum);
  }
}

Lit SequentialMiter::diff_within(std::size_t depth) const {
  if (depth == 0 || depth > cumulative_diff_.size()) {
    throw std::out_of_range("diff_within: depth not unrolled");
  }
  return sat::pos(cumulative_diff_[depth - 1]);
}

std::vector<sim::BitVec> SequentialMiter::extract_inputs(std::size_t depth) const {
  std::vector<sim::BitVec> out;
  out.reserve(depth);
  for (std::size_t t = 0; t < depth; ++t) {
    out.push_back(extract_bits(solver_, inputs_[t]));
  }
  return out;
}

sim::BitVec SequentialMiter::extract_key_a() const {
  return extract_bits(solver_, keys_a_);
}

sim::BitVec SequentialMiter::extract_key_b() const {
  return extract_bits(solver_, keys_b_);
}

void constrain_key_on_sequence(Solver& solver, const Netlist& nl,
                               const std::vector<Var>& key_vars,
                               const std::vector<sim::BitVec>& inputs,
                               const std::vector<sim::BitVec>& outputs,
                               const std::vector<Var>* init_vars) {
  if (inputs.size() != outputs.size()) {
    throw std::invalid_argument("constrain_key_on_sequence: length mismatch");
  }
  std::vector<Var> state;
  const std::vector<SignalId> order = netlist::topo_order(nl);
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    FrameSources src;
    src.keys = key_vars;
    if (t == 0) {
      if (init_vars != nullptr) {
        if (init_vars->size() != nl.dffs().size()) {
          throw std::invalid_argument(
              "constrain_key_on_sequence: init state width mismatch");
        }
        state = *init_vars;
      } else {
        state.reserve(nl.dffs().size());
        for (SignalId d : nl.dffs()) {
          const Var v = solver.new_var();
          if (nl.dff_init(d) == DffInit::Zero) encode_const(solver, v, false);
          else if (nl.dff_init(d) == DffInit::One) encode_const(solver, v, true);
          state.push_back(v);
        }
      }
    }
    src.states = state;
    const FrameVars fv = encode_frame(solver, nl, std::move(src), order);
    // Fix inputs.
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      solver.add_unit(Lit(fv.var[nl.inputs()[i]], inputs[t][i] == 0));
    }
    // Fix outputs to the oracle response.
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      solver.add_unit(Lit(fv.var[nl.outputs()[o]], outputs[t][o] == 0));
    }
    // Chain state.
    std::vector<Var> next;
    next.reserve(nl.dffs().size());
    for (SignalId d : nl.dffs()) next.push_back(fv.var[nl.dff_input(d)]);
    state = std::move(next);
  }
}

EquivalenceMiter::EquivalenceMiter(Solver& solver, const Netlist& a,
                                   const Netlist& b)
    : solver_(solver),
      a_(a),
      b_(b),
      order_a_(netlist::topo_order(a)),
      order_b_(netlist::topo_order(b)) {
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    throw std::invalid_argument("EquivalenceMiter: interface mismatch");
  }
  if (!b.key_inputs().empty()) {
    throw std::invalid_argument("EquivalenceMiter: reference must be key-free");
  }
  keys_a_.reserve(a.key_inputs().size());
  for (std::size_t i = 0; i < a.key_inputs().size(); ++i) {
    keys_a_.push_back(solver_.new_var());
  }
}

void EquivalenceMiter::extend_to(std::size_t depth) {
  while (frames_a_.size() < depth) {
    const std::size_t t = frames_a_.size();
    std::vector<Var> ins;
    for (std::size_t i = 0; i < a_.inputs().size(); ++i) {
      ins.push_back(solver_.new_var());
    }
    inputs_.push_back(ins);

    const auto make_frame = [&](const Netlist& nl,
                                const std::vector<netlist::SignalId>& order,
                                std::vector<FrameVars>& frames,
                                const std::vector<Var>& keys) {
      FrameSources src;
      src.inputs = ins;
      src.keys = keys;
      if (t == 0) {
        src.states.reserve(nl.dffs().size());
        for (SignalId d : nl.dffs()) {
          const Var v = solver_.new_var();
          if (nl.dff_init(d) == DffInit::Zero) encode_const(solver_, v, false);
          else if (nl.dff_init(d) == DffInit::One) encode_const(solver_, v, true);
          src.states.push_back(v);
        }
      } else {
        const FrameVars& prev = frames[t - 1];
        src.states.reserve(nl.dffs().size());
        for (SignalId d : nl.dffs()) {
          src.states.push_back(prev.var[nl.dff_input(d)]);
        }
      }
      frames.push_back(encode_frame(solver_, nl, std::move(src), order));
    };
    make_frame(a_, order_a_, frames_a_, keys_a_);
    make_frame(b_, order_b_, frames_b_, {});

    std::vector<Var> xors;
    for (std::size_t o = 0; o < a_.outputs().size(); ++o) {
      const Var x = solver_.new_var();
      encode_xor2(solver_, x, frames_a_[t].var[a_.outputs()[o]],
                  frames_b_[t].var[b_.outputs()[o]]);
      xors.push_back(x);
    }
    const Var diff = solver_.new_var();
    if (xors.empty()) {
      encode_const(solver_, diff, false);
    } else {
      encode_or(solver_, diff, xors);
    }
    const Var cum = solver_.new_var();
    if (t == 0) {
      encode_eq(solver_, cum, diff);
    } else {
      encode_or(solver_, cum, {cumulative_diff_[t - 1], diff});
    }
    cumulative_diff_.push_back(cum);
  }
}

Lit EquivalenceMiter::diff_within(std::size_t depth) const {
  if (depth == 0 || depth > cumulative_diff_.size()) {
    throw std::out_of_range("diff_within: depth not unrolled");
  }
  return sat::pos(cumulative_diff_[depth - 1]);
}

std::vector<sim::BitVec> EquivalenceMiter::extract_inputs(
    std::size_t depth) const {
  std::vector<sim::BitVec> out;
  out.reserve(depth);
  for (std::size_t t = 0; t < depth; ++t) {
    out.push_back(extract_bits(solver_, inputs_[t]));
  }
  return out;
}

sim::BitVec extract_bits(const Solver& solver, const std::vector<Var>& vars) {
  sim::BitVec out(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    out[i] = solver.model_value(vars[i]) ? 1 : 0;
  }
  return out;
}

}  // namespace cl::cnf
