// Root-level CNF simplification with full model reconstruction.
//
// Preprocessor runs on a Solver at decision level 0: root unit propagation
// to fixpoint, pure-literal elimination, and bounded variable elimination
// (BVE) by clause distribution. Every elimination is recorded in the
// solver's Remapper, which (a) reconstructs values for eliminated variables
// when a model is found — the attacks need real keys, not just SAT/UNSAT —
// and (b) holds the removed clauses so an eliminated variable can be
// *revived* (its clauses re-added, the variable frozen) when the incremental
// API later mentions it in a new clause or an assumption. Frozen variables
// (key inputs, assumption variables) are never eliminated.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/arena.hpp"
#include "sat/types.hpp"

namespace cl::sat {

class Solver;

/// Elimination ledger: which variables were eliminated, in which order, and
/// which clauses each elimination removed. Owned by the Solver.
class Remapper {
 public:
  bool eliminated(Var v) const {
    return static_cast<std::size_t>(v) < record_of_var_.size() &&
           record_of_var_[static_cast<std::size_t>(v)] >= 0;
  }
  bool empty() const { return live_records_ == 0; }
  std::size_t eliminated_count() const { return live_records_; }

  /// Reconstruct values for eliminated variables: walk the elimination
  /// records newest-first; for each variable, default it to False, then flip
  /// it to True if some removed clause containing pos(v) is otherwise
  /// unsatisfied. (The dual side cannot simultaneously need v False: the two
  /// offending clauses would have an unsatisfied resolvent, and every
  /// non-tautological resolvent was added back to the formula.)
  void extend(std::vector<LBool>& model) const;

 private:
  friend class Solver;
  friend class Preprocessor;

  struct Record {
    Var v = -1;
    bool revived = false;
    std::vector<std::vector<Lit>> pos;  ///< removed clauses containing pos(v)
    std::vector<std::vector<Lit>> neg;  ///< removed clauses containing neg(v)
  };

  Record& push(Var v);
  /// Mark `v` revived and hand back its record (the clauses to re-add).
  Record take(Var v);

  std::vector<Record> stack_;              // chronological elimination order
  std::vector<std::int32_t> record_of_var_;  // var -> index in stack_, or -1
  std::size_t live_records_ = 0;
};

/// One preprocessing run over a Solver. Cheap to construct; run() does the
/// work and returns false when the formula was refuted outright.
class Preprocessor {
 public:
  struct Limits {
    /// A variable with more total occurrences is not a BVE candidate
    /// (pure literals are exempt — eliminating them adds no resolvents).
    std::size_t max_occurrences = 16;
    /// Resolvents longer than this veto the elimination.
    std::size_t max_resolvent_lits = 16;
    /// Clause-count growth bound: resolvents kept minus clauses removed
    /// must not exceed this (0 = eliminations never grow the formula).
    int max_clause_growth = 0;
  };

  explicit Preprocessor(Solver& solver) : Preprocessor(solver, Limits()) {}
  Preprocessor(Solver& solver, Limits limits);

  /// Run elimination to fixpoint. Returns solver.ok() — false when the
  /// formula is Unsat.
  bool run();

 private:
  bool clause_root_satisfied(CRef c) const;
  void remove_clause(CRef c);
  bool try_eliminate(Var v);
  void touch(Var v);

  Solver& s_;
  Limits limits_;
  // occ_[lit code] -> refs of live clauses containing that literal. Entries
  // go stale when clauses die or are strengthened; consumers re-check.
  std::vector<std::vector<CRef>> occ_;
  std::vector<Var> queue_;
  std::vector<bool> in_queue_;
  std::vector<Lit> scratch_;
};

}  // namespace cl::sat
