// Self-contained CDCL SAT solver.
//
// Features: two-watched-literal propagation with blockers, VSIDS decision
// heuristic with phase saving, first-UIP conflict analysis with recursive
// clause minimization, LBD-aware learned-clause reduction, Luby restarts, and
// incremental solving under assumptions (required by the KC2 attack). No
// external dependencies.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace cl::sat {

/// 0-based variable index.
using Var = std::int32_t;

/// Literal: encodes (variable, sign) as 2*var + (negated ? 1 : 0).
class Lit {
 public:
  Lit() : code_(-2) {}
  Lit(Var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {}

  static Lit from_code(std::int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  Var var() const { return code_ >> 1; }
  bool negated() const { return code_ & 1; }
  Lit operator~() const { return from_code(code_ ^ 1); }
  std::int32_t code() const { return code_; }

  bool operator==(const Lit& o) const = default;
  bool operator<(const Lit& o) const { return code_ < o.code_; }

 private:
  std::int32_t code_;
};

inline Lit pos(Var v) { return Lit(v, false); }
inline Lit neg(Var v) { return Lit(v, true); }

enum class Result : std::uint8_t { Sat, Unsat, Unknown };

/// Tri-state assignment value.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

class Solver {
 public:
  Solver();
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Allocate a fresh variable.
  Var new_var();
  int num_vars() const { return static_cast<int>(activity_.size()); }

  /// Add a clause over existing variables. Returns false if the database is
  /// already unsatisfiable (the clause is still recorded as appropriate).
  bool add_clause(std::vector<Lit> lits);
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Solve under the given assumptions. Returns Unknown when a budget set via
  /// set_conflict_budget / set_propagation_budget is exhausted.
  Result solve(const std::vector<Lit>& assumptions = {});

  /// Model access after Result::Sat.
  bool model_value(Var v) const;
  bool model_value(Lit l) const;

  /// After Unsat under assumptions: the subset of assumption literals that
  /// participate in the final conflict (analogous to MiniSat's conflict
  /// clause over assumptions).
  const std::vector<Lit>& unsat_assumptions() const { return conflict_assumptions_; }

  /// Budgets: negative = unlimited. Budgets are consumed across solve calls
  /// until reset by another set_* call.
  void set_conflict_budget(std::int64_t max_conflicts);
  void set_propagation_budget(std::int64_t max_propagations);

  /// Wall-clock deadline for solve(); checked every few hundred conflicts.
  /// Negative disables. solve() returns Unknown when exceeded.
  void set_time_budget(double seconds);

  // Statistics.
  std::uint64_t num_conflicts() const { return stats_conflicts_; }
  std::uint64_t num_decisions() const { return stats_decisions_; }
  std::uint64_t num_propagations() const { return stats_propagations_; }
  std::uint64_t num_learned() const { return stats_learned_; }
  std::size_t num_clauses() const { return clauses_.size(); }

 private:
  struct Clause;
  struct Watcher {
    Clause* clause;
    Lit blocker;
  };

  LBool lit_value(Lit l) const;
  void new_decision_level() { level_limits_.push_back(static_cast<int>(trail_.size())); }
  int decision_level() const { return static_cast<int>(level_limits_.size()); }
  void attach(Clause* c);
  void detach(Clause* c);
  void enqueue(Lit l, Clause* reason);
  Clause* propagate();
  void analyze(Clause* conflict, std::vector<Lit>& learnt, int& backtrack_level);
  bool literal_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(Var v);
  void decay_var_activity() { var_inc_ /= 0.95; }
  void bump_clause(Clause* c);
  void reduce_db();
  void analyze_final(Lit p);
  static double luby(double y, int i);

  // Heap of variables ordered by activity.
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_empty() const { return heap_.empty(); }
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);

  std::vector<Clause*> clauses_;
  std::vector<Clause*> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by lit code
  std::vector<LBool> assigns_;
  std::vector<bool> phase_;
  std::vector<Clause*> reason_;
  std::vector<int> level_;
  std::vector<Lit> trail_;
  std::vector<int> level_limits_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<int> heap_;       // heap of vars
  std::vector<int> heap_pos_;   // var -> index in heap_ or -1

  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;

  std::vector<Lit> conflict_assumptions_;
  std::vector<LBool> model_;
  bool ok_ = true;

  std::int64_t conflict_budget_ = -1;
  std::int64_t propagation_budget_ = -1;
  double time_budget_s_ = -1.0;
  std::int64_t deadline_check_countdown_ = 0;
  std::chrono::steady_clock::time_point deadline_{};

  std::uint64_t stats_conflicts_ = 0;
  std::uint64_t stats_decisions_ = 0;
  std::uint64_t stats_propagations_ = 0;
  std::uint64_t stats_learned_ = 0;
  std::size_t max_learnts_ = 4000;
};

}  // namespace cl::sat
