// Self-contained CDCL SAT solver.
//
// Features: arena clause storage (sat/arena.hpp — contiguous 32-bit-ref
// clause memory with compacting GC at reduce/restart boundaries),
// two-watched-literal propagation with blockers and a dedicated
// binary-clause watch scheme, VSIDS decision heuristic (activity heap) with
// phase saving and best-phase caching, first-UIP conflict analysis with
// recursive clause minimization, exact LBD (glue) computation with
// update-on-use and LBD/activity-driven learned-clause reduction, Luby
// restarts, incremental solving under assumptions (required by the KC2
// attack), optional preprocessing (sat/preprocess.hpp — bounded variable
// elimination with model reconstruction) and inprocessing at restart
// boundaries (backward subsumption / self-subsuming resolution, clause
// vivification), per-instance diversification via Config (seeds, polarities,
// restart pacing) and an external interrupt flag (first-winner cancellation
// in the portfolio). No external dependencies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "sat/arena.hpp"
#include "sat/preprocess.hpp"
#include "sat/types.hpp"

namespace cl::sat {

class ClauseExchange;

class Solver {
 public:
  /// Search-strategy knobs. The defaults are the tuned single-solver
  /// configuration; PortfolioSolver hands each worker a diversified variant.
  /// Apply with set_config() before the first solve() — it reseeds the
  /// decision RNG and re-derives the initial polarity of every unassigned
  /// variable, discarding saved phases.
  struct Config {
    std::uint64_t seed = 0;            ///< decision/polarity RNG seed
    bool default_phase = false;        ///< initial saved polarity
    bool random_initial_phase = false; ///< scramble initial polarities (seed)
    double random_decision_freq = 0.0; ///< fraction of random decisions
    int restart_unit = 64;             ///< Luby base interval, in conflicts
    bool use_best_phase = true;        ///< restore best-trail phases on restart
    std::size_t max_learnts = 4000;    ///< learnt-DB reduction threshold
  };

  /// Counters over the solver's lifetime (cumulative across solve() calls).
  /// After a portfolio race, the winner's counters are folded in — stats
  /// measure the critical path, not the aggregate of cancelled workers.
  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t random_decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned = 0;
    std::uint64_t learnts_deleted = 0;  ///< learnt clauses dropped by reduce
    std::uint64_t glue_protected = 0;   ///< clauses the reduce sweep spared
                                        ///< only because LBD <= 2 (or binary)
    std::uint64_t minimized_literals = 0;  ///< literals removed from learnts
    std::uint64_t shared_exported = 0;  ///< clauses published to the exchange
    std::uint64_t shared_imported = 0;  ///< clauses adopted from the exchange
    std::uint64_t vars_eliminated = 0;  ///< variables removed by BVE
    std::uint64_t clauses_subsumed = 0;  ///< clauses removed by subsumption
    std::uint64_t vivified_lits = 0;  ///< literals removed by vivification
                                      ///< and self-subsuming resolution
    std::uint64_t arena_gc_bytes = 0;  ///< bytes reclaimed by arena GC
  };

  Solver();
  virtual ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Allocate a fresh variable.
  Var new_var();
  int num_vars() const { return static_cast<int>(activity_.size()); }

  /// Add a clause over existing variables. Returns false if the database is
  /// already unsatisfiable (the clause is still recorded as appropriate).
  /// Mentioning an eliminated variable revives it first (see preprocess()).
  bool add_clause(std::vector<Lit> lits);
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Solve under the given assumptions. Returns Unknown when a budget set via
  /// set_conflict_budget / set_propagation_budget is exhausted, the deadline
  /// passes, or the interrupt flag fires. Assumptions over eliminated
  /// variables revive (and freeze) them first.
  virtual Result solve(const std::vector<Lit>& assumptions = {});

  /// Model access after Result::Sat. Models always cover the *original*
  /// problem: values of preprocessing-eliminated variables are reconstructed
  /// through the Remapper before solve() returns.
  bool model_value(Var v) const;
  bool model_value(Lit l) const;

  /// After Unsat under assumptions: the subset of assumption literals that
  /// participate in the final conflict (analogous to MiniSat's conflict
  /// clause over assumptions).
  const std::vector<Lit>& unsat_assumptions() const { return conflict_assumptions_; }

  /// Budgets: negative = unlimited. Budgets are consumed across solve calls
  /// until reset by another set_* call.
  void set_conflict_budget(std::int64_t max_conflicts);
  void set_propagation_budget(std::int64_t max_propagations);

  /// Wall-clock deadline for solve(); checked every few hundred conflicts.
  /// Negative disables. solve() returns Unknown when exceeded.
  void set_time_budget(double seconds);

  /// External cancellation: solve() polls `flag` once per conflict (and at
  /// entry) and returns Unknown when it reads true. The pointed-to flag must
  /// outlive the solve call; nullptr disables. This is the portfolio's
  /// first-winner cancellation hook.
  void set_interrupt(const std::atomic<bool>* flag) { interrupt_ = flag; }

  /// Live clause sharing (portfolio races): publish root units and glue
  /// learnts (LBD <= 2) to `exchange` as they are learned, and import what
  /// other workers published at every restart boundary. `source` identifies
  /// this solver so it skips its own clauses. The exchange must outlive the
  /// solve call; nullptr disables (the default — a lone solver stays exactly
  /// deterministic).
  void set_exchange(ClauseExchange* exchange, std::size_t source);

  /// Replace the search configuration (see Config). Only legal at decision
  /// level 0, i.e. outside solve().
  void set_config(const Config& config);
  const Config& config() const { return config_; }

  /// Replay this solver's problem — variables, root-level units, problem
  /// clauses, and current learnts (they are implied, so sharing them seeds
  /// the clone with everything learned so far) — into `dst`, which must not
  /// have more variables than this solver. Only legal at decision level 0.
  /// Elimination records are NOT copied: revive assumption variables first
  /// if the clone will be solved under assumptions (PortfolioSolver does).
  void copy_problem_into(Solver& dst) const;

  // ---- preprocessing / inprocessing ---------------------------------------

  /// Frozen variables are never eliminated by preprocess(). Freeze every
  /// variable whose value must survive into the model untouched by
  /// reconstruction ordering, and every variable that later clauses or
  /// assumptions will mention cheaply (revival re-adds all removed clauses).
  void set_frozen(Var v, bool frozen);
  bool frozen(Var v) const { return frozen_[static_cast<std::size_t>(v)]; }

  /// Root-level simplification: unit propagation to fixpoint, pure-literal
  /// elimination, bounded variable elimination (sat::Preprocessor). Records
  /// every elimination in the Remapper for model reconstruction and
  /// revival. Only legal at decision level 0. Returns false when the
  /// formula is refuted. Gated by the caller (CUTELOCK_SAT_PREPROCESS /
  /// AttackBudget::sat_preprocess) — never runs implicitly.
  bool preprocess();

  /// Enable inprocessing at restart boundaries: backward subsumption with
  /// self-subsuming resolution plus bounded clause vivification, first after
  /// 10 restarts, then at doubling intervals. Off by default (stable-mode
  /// determinism). Gated together with preprocess() by the same knobs.
  void set_inprocess(bool on) { inprocess_enabled_ = on; }

  /// Arena GC trigger: collect when `frac` of the arena words are wasted.
  /// Default 0.25, or CUTELOCK_SAT_GC_FRAC (the ASan stress jobs set it very
  /// low so compaction runs constantly).
  void set_gc_frac(double frac) { gc_frac_ = frac; }

  const Remapper& remapper() const { return remapper_; }
  bool eliminated(Var v) const { return remapper_.eliminated(v); }

  // Statistics.
  const Stats& stats() const { return stats_; }
  std::uint64_t num_conflicts() const { return stats_.conflicts; }
  std::uint64_t num_decisions() const { return stats_.decisions; }
  std::uint64_t num_propagations() const { return stats_.propagations; }
  std::uint64_t num_learned() const { return stats_.learned; }
  std::size_t num_clauses() const { return clauses_.size(); }
  std::size_t num_learnts() const { return learnts_.size(); }
  std::size_t arena_bytes() const { return arena_.size_bytes(); }

 protected:
  friend class PortfolioSolver;
  friend class Preprocessor;

  struct Watcher {
    CRef clause;
    Lit blocker;
  };
  /// Binary clauses get their own watch lists: the implied literal is read
  /// straight from the watcher, so propagation over binaries never touches
  /// clause memory. The clause ref survives only to serve as a reason /
  /// conflict object for analyze().
  struct BinWatcher {
    Lit other;
    CRef clause;
  };

  LBool lit_value(Lit l) const;
  void new_decision_level() { level_limits_.push_back(static_cast<int>(trail_.size())); }
  int decision_level() const { return static_cast<int>(level_limits_.size()); }
  void attach(CRef c);
  void detach(CRef c);
  void enqueue(Lit l, CRef reason);
  CRef propagate();
  void analyze(CRef conflict, std::vector<Lit>& learnt, int& backtrack_level);
  bool literal_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(Var v);
  void decay_var_activity() { var_inc_ /= 0.95; }
  void bump_clause(CRef c);
  int clause_lbd(const std::vector<Lit>& lits);
  int clause_lbd(CRef c);  ///< same, reading literals straight from the arena
  void reduce_db();
  void analyze_final(Lit p);
  bool interrupted() const {
    return interrupt_ != nullptr && interrupt_->load(std::memory_order_relaxed);
  }
  void export_learnt(const std::vector<Lit>& learnt, int lbd);
  void import_shared();
  std::uint64_t next_rand();
  static double luby(double y, int i);

  // ---- preprocessing / inprocessing internals -----------------------------

  /// Re-add the removed clauses of an eliminated variable and freeze it
  /// (recursively revives other eliminated variables those clauses mention).
  void revive(Var v);
  /// Detach + free, clearing a root reason slot if `c` holds one.
  void remove_clause_ref(CRef c);
  /// Root assignments never need their reasons again (analysis skips level
  /// 0); clearing them unlocks the clauses for inprocessing.
  void clear_root_reasons();
  /// Backward subsumption + self-subsuming resolution. Level 0 only.
  void subsume_pass();
  /// Remove one literal from a clause (self-subsuming resolution) in place.
  void strengthen_clause(CRef d, Lit out_lit);
  /// Reattach a detached, just-shrunk clause with root-sound watches,
  /// collapsing to a unit / conflict when fewer than two literals survive.
  void reattach_simplified(CRef d);
  /// Bounded clause vivification over problem clauses. Level 0 only.
  void vivify_pass();
  /// Drop dead refs from clauses_/learnts_ after a simplification pass.
  void compact_clause_lists();
  void inprocess();

  // ---- arena GC -----------------------------------------------------------

  void gc_arena();
  void maybe_gc() {
    if (arena_.gc_due(gc_frac_)) gc_arena();
  }

  // Heap of variables ordered by activity.
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_empty() const { return heap_.empty(); }
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);

  ClauseArena arena_;
  std::vector<CRef> clauses_;
  std::vector<CRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;       // indexed by lit code
  std::vector<std::vector<BinWatcher>> bin_watches_;  // indexed by lit code
  std::vector<LBool> assigns_;
  std::vector<bool> phase_;
  std::vector<bool> best_phase_;      // phases at the deepest trail seen
  std::size_t best_trail_size_ = 0;
  std::vector<CRef> reason_;
  std::vector<int> level_;
  std::vector<Lit> trail_;
  std::vector<int> level_limits_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<int> heap_;       // heap of vars
  std::vector<int> heap_pos_;   // var -> index in heap_ or -1

  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;
  std::vector<std::uint64_t> level_stamp_;  // exact-LBD scratch, per level
  std::uint64_t lbd_stamp_ = 0;

  std::vector<Lit> conflict_assumptions_;
  std::vector<LBool> model_;
  bool ok_ = true;

  Config config_;
  std::uint64_t rng_state_ = 0x853c49e6748fea9bULL;

  ClauseExchange* exchange_ = nullptr;
  std::size_t exchange_source_ = 0;
  std::uint64_t exchange_cursor_ = 0;
  std::vector<std::uint64_t> imported_hashes_;  // sorted; reader-side dedup

  std::int64_t conflict_budget_ = -1;
  std::int64_t propagation_budget_ = -1;
  double time_budget_s_ = -1.0;
  std::int64_t deadline_check_countdown_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  const std::atomic<bool>* interrupt_ = nullptr;

  Remapper remapper_;
  std::vector<bool> frozen_;
  bool inprocess_enabled_ = false;
  std::uint64_t inprocess_next_restarts_ = 10;
  std::size_t vivify_cursor_ = 0;
  double gc_frac_;

  Stats stats_;
  std::size_t max_learnts_ = 4000;
};

}  // namespace cl::sat
