// Self-contained CDCL SAT solver.
//
// Features: two-watched-literal propagation with blockers and a dedicated
// binary-clause watch scheme, VSIDS decision heuristic with phase saving and
// best-phase caching, first-UIP conflict analysis with recursive clause
// minimization, exact LBD (glue) computation with update-on-use and
// LBD/activity-driven learned-clause reduction, Luby restarts, incremental
// solving under assumptions (required by the KC2 attack), per-instance
// diversification via Config (seeds, polarities, restart pacing) and an
// external interrupt flag (first-winner cancellation in the portfolio). No
// external dependencies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace cl::sat {

class ClauseExchange;

/// 0-based variable index.
using Var = std::int32_t;

/// Literal: encodes (variable, sign) as 2*var + (negated ? 1 : 0).
class Lit {
 public:
  Lit() : code_(-2) {}
  Lit(Var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {}

  static Lit from_code(std::int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  Var var() const { return code_ >> 1; }
  bool negated() const { return code_ & 1; }
  Lit operator~() const { return from_code(code_ ^ 1); }
  std::int32_t code() const { return code_; }

  bool operator==(const Lit& o) const = default;
  bool operator<(const Lit& o) const { return code_ < o.code_; }

 private:
  std::int32_t code_;
};

inline Lit pos(Var v) { return Lit(v, false); }
inline Lit neg(Var v) { return Lit(v, true); }

enum class Result : std::uint8_t { Sat, Unsat, Unknown };

/// Tri-state assignment value.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

class Solver {
 public:
  /// Search-strategy knobs. The defaults are the tuned single-solver
  /// configuration; PortfolioSolver hands each worker a diversified variant.
  /// Apply with set_config() before the first solve() — it reseeds the
  /// decision RNG and re-derives the initial polarity of every unassigned
  /// variable, discarding saved phases.
  struct Config {
    std::uint64_t seed = 0;            ///< decision/polarity RNG seed
    bool default_phase = false;        ///< initial saved polarity
    bool random_initial_phase = false; ///< scramble initial polarities (seed)
    double random_decision_freq = 0.0; ///< fraction of random decisions
    int restart_unit = 64;             ///< Luby base interval, in conflicts
    bool use_best_phase = true;        ///< restore best-trail phases on restart
    std::size_t max_learnts = 4000;    ///< learnt-DB reduction threshold
  };

  /// Counters over the solver's lifetime (cumulative across solve() calls).
  /// After a portfolio race, the winner's counters are folded in — stats
  /// measure the critical path, not the aggregate of cancelled workers.
  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t random_decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned = 0;
    std::uint64_t learnts_deleted = 0;  ///< learnt clauses dropped by reduce
    std::uint64_t glue_protected = 0;   ///< clauses the reduce sweep spared
                                        ///< only because LBD <= 2 (or binary)
    std::uint64_t minimized_literals = 0;  ///< literals removed from learnts
    std::uint64_t shared_exported = 0;  ///< clauses published to the exchange
    std::uint64_t shared_imported = 0;  ///< clauses adopted from the exchange
  };

  Solver();
  virtual ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Allocate a fresh variable.
  Var new_var();
  int num_vars() const { return static_cast<int>(activity_.size()); }

  /// Add a clause over existing variables. Returns false if the database is
  /// already unsatisfiable (the clause is still recorded as appropriate).
  bool add_clause(std::vector<Lit> lits);
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Solve under the given assumptions. Returns Unknown when a budget set via
  /// set_conflict_budget / set_propagation_budget is exhausted, the deadline
  /// passes, or the interrupt flag fires.
  virtual Result solve(const std::vector<Lit>& assumptions = {});

  /// Model access after Result::Sat.
  bool model_value(Var v) const;
  bool model_value(Lit l) const;

  /// After Unsat under assumptions: the subset of assumption literals that
  /// participate in the final conflict (analogous to MiniSat's conflict
  /// clause over assumptions).
  const std::vector<Lit>& unsat_assumptions() const { return conflict_assumptions_; }

  /// Budgets: negative = unlimited. Budgets are consumed across solve calls
  /// until reset by another set_* call.
  void set_conflict_budget(std::int64_t max_conflicts);
  void set_propagation_budget(std::int64_t max_propagations);

  /// Wall-clock deadline for solve(); checked every few hundred conflicts.
  /// Negative disables. solve() returns Unknown when exceeded.
  void set_time_budget(double seconds);

  /// External cancellation: solve() polls `flag` once per conflict (and at
  /// entry) and returns Unknown when it reads true. The pointed-to flag must
  /// outlive the solve call; nullptr disables. This is the portfolio's
  /// first-winner cancellation hook.
  void set_interrupt(const std::atomic<bool>* flag) { interrupt_ = flag; }

  /// Live clause sharing (portfolio races): publish root units and glue
  /// learnts (LBD <= 2) to `exchange` as they are learned, and import what
  /// other workers published at every restart boundary. `source` identifies
  /// this solver so it skips its own clauses. The exchange must outlive the
  /// solve call; nullptr disables (the default — a lone solver stays exactly
  /// deterministic).
  void set_exchange(ClauseExchange* exchange, std::size_t source);

  /// Replace the search configuration (see Config). Only legal at decision
  /// level 0, i.e. outside solve().
  void set_config(const Config& config);
  const Config& config() const { return config_; }

  /// Replay this solver's problem — variables, root-level units, problem
  /// clauses, and current learnts (they are implied, so sharing them seeds
  /// the clone with everything learned so far) — into `dst`, which must not
  /// have more variables than this solver. Only legal at decision level 0.
  void copy_problem_into(Solver& dst) const;

  // Statistics.
  const Stats& stats() const { return stats_; }
  std::uint64_t num_conflicts() const { return stats_.conflicts; }
  std::uint64_t num_decisions() const { return stats_.decisions; }
  std::uint64_t num_propagations() const { return stats_.propagations; }
  std::uint64_t num_learned() const { return stats_.learned; }
  std::size_t num_clauses() const { return clauses_.size(); }
  std::size_t num_learnts() const { return learnts_.size(); }

 protected:
  friend class PortfolioSolver;

  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    int lbd = 0;
    bool learnt = false;
  };
  struct Watcher {
    Clause* clause;
    Lit blocker;
  };
  /// Binary clauses get their own watch lists: the implied literal is read
  /// straight from the watcher, so propagation over binaries never touches
  /// clause memory. The Clause* survives only to serve as a reason /
  /// conflict object for analyze().
  struct BinWatcher {
    Lit other;
    Clause* clause;
  };

  LBool lit_value(Lit l) const;
  void new_decision_level() { level_limits_.push_back(static_cast<int>(trail_.size())); }
  int decision_level() const { return static_cast<int>(level_limits_.size()); }
  void attach(Clause* c);
  void detach(Clause* c);
  void enqueue(Lit l, Clause* reason);
  Clause* propagate();
  void analyze(Clause* conflict, std::vector<Lit>& learnt, int& backtrack_level);
  bool literal_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(Var v);
  void decay_var_activity() { var_inc_ /= 0.95; }
  void bump_clause(Clause* c);
  int clause_lbd(const std::vector<Lit>& lits);
  void reduce_db();
  void analyze_final(Lit p);
  bool interrupted() const {
    return interrupt_ != nullptr && interrupt_->load(std::memory_order_relaxed);
  }
  void export_learnt(const std::vector<Lit>& learnt, int lbd);
  void import_shared();
  std::uint64_t next_rand();
  static double luby(double y, int i);

  // Heap of variables ordered by activity.
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_empty() const { return heap_.empty(); }
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);

  std::vector<Clause*> clauses_;
  std::vector<Clause*> learnts_;
  std::vector<std::vector<Watcher>> watches_;       // indexed by lit code
  std::vector<std::vector<BinWatcher>> bin_watches_;  // indexed by lit code
  std::vector<LBool> assigns_;
  std::vector<bool> phase_;
  std::vector<bool> best_phase_;      // phases at the deepest trail seen
  std::size_t best_trail_size_ = 0;
  std::vector<Clause*> reason_;
  std::vector<int> level_;
  std::vector<Lit> trail_;
  std::vector<int> level_limits_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<int> heap_;       // heap of vars
  std::vector<int> heap_pos_;   // var -> index in heap_ or -1

  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;
  std::vector<std::uint64_t> level_stamp_;  // exact-LBD scratch, per level
  std::uint64_t lbd_stamp_ = 0;

  std::vector<Lit> conflict_assumptions_;
  std::vector<LBool> model_;
  bool ok_ = true;

  Config config_;
  std::uint64_t rng_state_ = 0x853c49e6748fea9bULL;

  ClauseExchange* exchange_ = nullptr;
  std::size_t exchange_source_ = 0;
  std::uint64_t exchange_cursor_ = 0;
  std::vector<std::uint64_t> imported_hashes_;  // sorted; reader-side dedup

  std::int64_t conflict_budget_ = -1;
  std::int64_t propagation_budget_ = -1;
  double time_budget_s_ = -1.0;
  std::int64_t deadline_check_countdown_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  const std::atomic<bool>* interrupt_ = nullptr;

  Stats stats_;
  std::size_t max_learnts_ = 4000;
};

}  // namespace cl::sat
