#include "sat/exchange.hpp"

#include <algorithm>

namespace cl::sat {

ClauseExchange::ClauseExchange(std::size_t capacity)
    : slots_(std::max<std::size_t>(64, capacity)) {}

bool ClauseExchange::publish(std::size_t source, const Lit* lits,
                             std::size_t n) {
  if (n == 0 || n > k_max_lits) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint64_t idx = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[idx % slots_.size()];
  std::uint64_t s = slot.seq.load(std::memory_order_relaxed);
  // Claim the slot by bumping the seqlock to odd; losing the claim (another
  // writer lapped us onto the same slot) just drops the clause.
  if ((s & 1) != 0 ||
      !slot.seq.compare_exchange_strong(s, s + 1, std::memory_order_acq_rel)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slot.source.store(static_cast<std::uint32_t>(source),
                    std::memory_order_relaxed);
  slot.size.store(static_cast<std::uint32_t>(n), std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    slot.lits[i].store(lits[i].code(), std::memory_order_relaxed);
  }
  slot.seq.store(s + 2, std::memory_order_release);
  published_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace cl::sat
