#include "sat/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "sat/exchange.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

namespace cl::sat {

namespace {

/// Process-wide race pool, shared by every PortfolioSolver. Distinct from
/// the bench::Runner pool, so an attack running as a Runner job can race a
/// portfolio without nesting wait() inside its own pool. solve() only ever
/// waits on this pool from non-portfolio threads (workers are plain
/// Solvers), so the TaskGroup barrier cannot deadlock. Sized by
/// CUTELOCK_JOBS (like every other pool) with a floor of 2 so a race is
/// always a race; races wider than the pool still complete, late workers
/// just start (and see the cancel flag) once a slot frees up.
util::ThreadPool& race_pool() {
  static util::ThreadPool pool(std::max<std::size_t>(2, util::jobs_from_env()));
  return pool;
}

/// Caps on learnt clauses imported from winning workers: per race (enough
/// to carry the derived knowledge forward) and over the solver's lifetime —
/// imports become permanent problem clauses that every later race clones,
/// so a long incremental attack loop must not accrete them without bound.
constexpr std::size_t k_max_imported_learnts_per_race = 2000;
constexpr std::size_t k_max_imported_learnts_total = 20000;

}  // namespace

PortfolioSolver::PortfolioSolver(std::size_t workers)
    : workers_(workers == 0 ? 1 : workers),
      share_(util::sat_share_from_env()) {}

Solver::Config PortfolioSolver::worker_config(std::size_t index) {
  Config c;
  c.seed = 0x9E3779B97F4A7C15ULL * (index + 1);
  switch (index % 4) {
    case 0:
      break;  // reference configuration: the tuned single-solver defaults
    case 1:
      c.default_phase = true;
      c.restart_unit = 32;
      break;
    case 2:
      c.random_initial_phase = true;
      c.random_decision_freq = 0.02;
      c.restart_unit = 128;
      break;
    case 3:
      c.random_initial_phase = true;
      c.random_decision_freq = 0.01;
      c.use_best_phase = false;
      c.restart_unit = 256;
      break;
  }
  // Workers beyond the first cycle would otherwise repeat cases 0/1
  // verbatim (those configs never consult the RNG, so a distinct seed alone
  // changes nothing): force seeded randomness into every later cycle.
  if (index >= 4) {
    c.random_initial_phase = true;
    if (c.random_decision_freq == 0.0) {
      c.random_decision_freq = 0.005 * static_cast<double>(index / 4);
    }
  }
  return c;
}

Result PortfolioSolver::solve(const std::vector<Lit>& assumptions) {
  if (workers_ <= 1) return Solver::solve(assumptions);
  if (!ok_) return Result::Unsat;
  conflict_assumptions_.clear();
  backtrack(0);
  if (propagate() != k_cref_undef) {
    ok_ = false;
    return Result::Unsat;
  }
  // Workers get the problem via copy_problem_into, which does NOT carry
  // elimination records: revive assumption variables in the master first so
  // the replayed clause set constrains them.
  if (!remapper_.empty()) {
    for (const Lit& a : assumptions) {
      if (a.var() >= 0 && a.var() < num_vars() &&
          remapper_.eliminated(a.var())) {
        revive(a.var());
      }
    }
    if (!ok_) return Result::Unsat;
  }

  // Remaining budgets, translated from this solver's absolute counters to
  // the per-worker relative form.
  const std::int64_t conflicts_left =
      conflict_budget_ < 0
          ? -1
          : std::max<std::int64_t>(
                0, conflict_budget_ - static_cast<std::int64_t>(stats_.conflicts));
  const std::int64_t propagations_left =
      propagation_budget_ < 0
          ? -1
          : std::max<std::int64_t>(
                0, propagation_budget_ -
                       static_cast<std::int64_t>(stats_.propagations));
  double seconds_left = -1.0;
  if (time_budget_s_ >= 0) {
    seconds_left = std::max(
        0.0, std::chrono::duration<double>(deadline_ -
                                           std::chrono::steady_clock::now())
                 .count());
  }

  std::vector<std::unique_ptr<Solver>> workers;
  workers.reserve(workers_);
  std::atomic<bool> cancel{false};
  std::atomic<int> winner{-1};
  std::vector<Result> results(workers_, Result::Unknown);
  // Per-race exchange (only when sharing): lives on this frame until
  // group.wait() returns, so worker pointers into it never dangle.
  std::optional<ClauseExchange> exchange;
  if (share_) exchange.emplace();
  for (std::size_t i = 0; i < workers_; ++i) {
    auto w = std::make_unique<Solver>();
    copy_problem_into(*w);
    w->set_config(worker_config(i));
    w->set_conflict_budget(conflicts_left);
    w->set_propagation_budget(propagations_left);
    w->set_time_budget(seconds_left);
    w->set_interrupt(&cancel);
    if (share_) w->set_exchange(&*exchange, i);
    workers.push_back(std::move(w));
  }

  util::TaskGroup group(race_pool());
  for (std::size_t i = 0; i < workers_; ++i) {
    group.submit([this, i, &workers, &results, &assumptions, &cancel, &winner] {
      const Result r = workers[i]->solve(assumptions);
      results[i] = r;
      if (r != Result::Unknown) {
        int expected = -1;
        if (winner.compare_exchange_strong(expected, static_cast<int>(i))) {
          cancel.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  group.wait();

  const int win = winner.load();
  if (win < 0) return Result::Unknown;  // every worker ran out of budget

  Solver& w = *workers[static_cast<std::size_t>(win)];
  const Result verdict = results[static_cast<std::size_t>(win)];

  // Fold the winner's counters in: stats measure the race's critical path,
  // and the budget accounting stays comparable to a single solver's.
  stats_.conflicts += w.stats_.conflicts;
  stats_.decisions += w.stats_.decisions;
  stats_.random_decisions += w.stats_.random_decisions;
  stats_.propagations += w.stats_.propagations;
  stats_.restarts += w.stats_.restarts;
  stats_.learned += w.stats_.learned;
  stats_.learnts_deleted += w.stats_.learnts_deleted;
  stats_.glue_protected += w.stats_.glue_protected;
  stats_.minimized_literals += w.stats_.minimized_literals;
  stats_.shared_exported += w.stats_.shared_exported;
  stats_.shared_imported += w.stats_.shared_imported;
  stats_.vars_eliminated += w.stats_.vars_eliminated;
  stats_.clauses_subsumed += w.stats_.clauses_subsumed;
  stats_.vivified_lits += w.stats_.vivified_lits;
  stats_.arena_gc_bytes += w.stats_.arena_gc_bytes;
  if (exchange) {
    shared_published_ += exchange->published();
    shared_dropped_ += exchange->dropped();
  }

  // Keep the winner's derived knowledge: root-level units and low-LBD
  // learnts are implied by the shared problem clauses, so replaying them
  // into the master is sound and primes both the next race and the
  // incremental attack loop around it.
  if (w.ok_) {
    for (const Lit& unit : w.trail_) add_clause({unit});
    std::size_t imported = 0;
    for (const CRef c : w.learnts_) {
      if (w.arena_.lbd(c) > 2) continue;
      if (imported_learnts_ >= k_max_imported_learnts_total) break;
      if (++imported > k_max_imported_learnts_per_race) break;
      ++imported_learnts_;
      add_clause(w.arena_.lits(c));
      if (!ok_) break;
    }
  } else {
    // The winner refuted the problem independently of the assumptions.
    ok_ = false;
  }

  if (verdict == Result::Sat) {
    model_ = w.model_;
    // The workers never eliminate (no remapper records travel with the
    // problem copy), so eliminated variables are simply unconstrained in
    // their models: reconstruct them from the master's ledger.
    if (!remapper_.empty()) remapper_.extend(model_);
  } else {
    conflict_assumptions_ = w.conflict_assumptions_;
  }
  return verdict;
}

}  // namespace cl::sat
