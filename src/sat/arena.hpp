// Chunked arena storage for SAT clauses.
//
// Clauses live in one contiguous vector of 32-bit words and are addressed by
// 32-bit refs (word offsets) instead of heap pointers, so propagation walks
// cache-local memory and a watcher record shrinks to 8 bytes. Layout per
// clause (uniform for problem and learnt clauses — conflict analysis bumps
// the activity of whatever reason clause it resolves on, so problem clauses
// need the field too):
//
//   word 0    header: size << 3 | learnt << 2 | dead << 1 | relocated
//   word 1    LBD (glue) while live; forwarding ref after relocation
//   word 2-3  activity, IEEE double split across two words
//   then      literal codes, one word each
//
// Deleting a clause marks it dead and counts its words as wasted; the memory
// is reclaimed by garbage collection (Solver::maybe_gc) at reduce/restart
// boundaries: live clauses are relocated into a fresh arena (each clause
// leaves a forwarding ref behind, so every watcher/reason that points at it
// resolves to the same new ref) and the old arena is dropped wholesale.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sat/types.hpp"

namespace cl::sat {

/// Arena clause reference: word offset of the clause header. 32 bits cap the
/// arena at 16 GiB of clause memory — far beyond any attack instance.
using CRef = std::uint32_t;
inline constexpr CRef k_cref_undef = 0xFFFFFFFFu;

class ClauseArena {
 public:
  static constexpr std::uint32_t k_header_words = 4;

  ClauseArena() = default;

  /// Allocate a clause over `lits`. LBD starts at `lbd`, activity at 0.
  template <typename LitContainer>
  CRef alloc(const LitContainer& lits, bool learnt, int lbd = 0) {
    const auto n = static_cast<std::uint32_t>(lits.size());
    const CRef ref = static_cast<CRef>(mem_.size());
    mem_.push_back((n << 3) | (learnt ? 4u : 0u));
    mem_.push_back(static_cast<std::uint32_t>(lbd));
    mem_.push_back(0);
    mem_.push_back(0);
    for (const Lit& l : lits) {
      mem_.push_back(static_cast<std::uint32_t>(l.code()));
    }
    ++live_;
    return ref;
  }

  std::uint32_t size(CRef c) const { return mem_[c] >> 3; }
  bool learnt(CRef c) const { return (mem_[c] & 4u) != 0; }
  bool dead(CRef c) const { return (mem_[c] & 2u) != 0; }
  bool relocated(CRef c) const { return (mem_[c] & 1u) != 0; }

  Lit lit(CRef c, std::uint32_t i) const {
    return Lit::from_code(
        static_cast<std::int32_t>(mem_[c + k_header_words + i]));
  }
  void set_lit(CRef c, std::uint32_t i, Lit l) {
    mem_[c + k_header_words + i] = static_cast<std::uint32_t>(l.code());
  }
  void swap_lits(CRef c, std::uint32_t i, std::uint32_t j) {
    std::swap(mem_[c + k_header_words + i], mem_[c + k_header_words + j]);
  }
  /// Copy the literals out (preprocessing, problem replay, clause export).
  std::vector<Lit> lits(CRef c) const {
    std::vector<Lit> out;
    const std::uint32_t n = size(c);
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(lit(c, i));
    return out;
  }

  int lbd(CRef c) const { return static_cast<int>(mem_[c + 1]); }
  void set_lbd(CRef c, int lbd) {
    mem_[c + 1] = static_cast<std::uint32_t>(lbd);
  }

  double activity(CRef c) const {
    const std::uint64_t bits =
        static_cast<std::uint64_t>(mem_[c + 2]) |
        (static_cast<std::uint64_t>(mem_[c + 3]) << 32);
    return std::bit_cast<double>(bits);
  }
  void set_activity(CRef c, double a) {
    const auto bits = std::bit_cast<std::uint64_t>(a);
    mem_[c + 2] = static_cast<std::uint32_t>(bits);
    mem_[c + 3] = static_cast<std::uint32_t>(bits >> 32);
  }

  /// Shrink a live clause in place (vivification / strengthening). The freed
  /// tail words count as wasted until the next GC.
  void shrink(CRef c, std::uint32_t new_size) {
    const std::uint32_t old_size = size(c);
    assert(new_size >= 1 && new_size <= old_size);
    wasted_ += old_size - new_size;
    mem_[c] = (new_size << 3) | (mem_[c] & 7u);
  }

  /// Mark a clause dead. The caller must have detached it from every watch
  /// list / reason slot; the words are reclaimed by the next GC.
  void free_clause(CRef c) {
    assert(!dead(c));
    wasted_ += k_header_words + size(c);
    mem_[c] |= 2u;
    --live_;
  }

  /// Relocate a live clause into `to`, leaving a forwarding ref behind, and
  /// return the new ref. Idempotent: a second call (another watcher of the
  /// same clause) just follows the forwarding ref.
  CRef relocate(CRef c, ClauseArena& to) {
    if (relocated(c)) return mem_[c + 1];
    assert(!dead(c));
    const CRef moved = to.alloc(lits(c), learnt(c), lbd(c));
    to.set_activity(moved, activity(c));
    mem_[c] |= 1u;
    mem_[c + 1] = moved;
    return moved;
  }

  std::size_t live_clauses() const { return live_; }
  std::size_t size_bytes() const { return mem_.size() * sizeof(std::uint32_t); }
  std::size_t wasted_bytes() const { return wasted_ * sizeof(std::uint32_t); }
  /// GC is worthwhile once `frac` of the arena is dead/shrunk words.
  bool gc_due(double frac) const {
    return !mem_.empty() &&
           static_cast<double>(wasted_) >=
               frac * static_cast<double>(mem_.size());
  }
  void reserve_words(std::size_t words) { mem_.reserve(words); }
  std::size_t used_words() const { return mem_.size(); }
  std::size_t wasted_words() const { return static_cast<std::size_t>(wasted_); }

 private:
  std::vector<std::uint32_t> mem_;
  std::uint64_t wasted_ = 0;  // dead/shrunk words awaiting GC
  std::size_t live_ = 0;
};

}  // namespace cl::sat
