// Minimal DIMACS CNF reader/writer, used by the solver tests and for
// exporting attack instances for external inspection.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace cl::sat {

/// A raw CNF: clause list over 1-based DIMACS variables.
struct Dimacs {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;
};

Dimacs read_dimacs(std::istream& in);
Dimacs read_dimacs_string(const std::string& text);

/// Load a DIMACS problem into a fresh region of `solver`; returns the Var
/// corresponding to DIMACS variable 1 (variables are consecutive).
Var load_dimacs(Solver& solver, const Dimacs& d);

std::string write_dimacs_string(const Dimacs& d);

}  // namespace cl::sat
