// Portfolio CDCL solving behind the sat::Solver interface.
//
// A PortfolioSolver is a Solver: clauses, variables, budgets and models go
// through the inherited interface, so cnf::SequentialMiter and the attacks
// use it unchanged. solve() is overridden: with N > 1 workers it clones the
// problem (including everything learnt so far) into N fresh solvers with
// diversified configurations — different seeds, initial polarities, restart
// pacing and random-decision rates — and races them on a shared
// util::ThreadPool. The first worker to return Sat/Unsat raises the
// interrupt flag of the others (first-winner cancellation); the winner's
// model / failed-assumption set / statistics are folded back into this
// solver, and its low-LBD learnt clauses are imported so the next race (and
// the incremental attack loop around it) keeps the derived knowledge.
//
// Portfolio answers are deterministic in *verdict* (Sat/Unsat agree with the
// single solver) but not in *model* or timing — bench harnesses therefore
// force workers = 1 under CUTELOCK_BENCH_STABLE=1 (see bench_common).
#pragma once

#include <cstddef>

#include "sat/solver.hpp"

namespace cl::sat {

class PortfolioSolver : public Solver {
 public:
  /// `workers` <= 1 degrades to the plain (deterministic) Solver.
  explicit PortfolioSolver(std::size_t workers = 1);

  Result solve(const std::vector<Lit>& assumptions = {}) override;

  std::size_t workers() const { return workers_; }

  /// The diversified configuration handed to worker `index` (worker 0 runs
  /// the reference config). Exposed for tests and docs.
  static Config worker_config(std::size_t index);

 private:
  std::size_t workers_;
  std::size_t imported_learnts_ = 0;  // lifetime import budget consumed
};

}  // namespace cl::sat
