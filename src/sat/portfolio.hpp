// Portfolio CDCL solving behind the sat::Solver interface.
//
// A PortfolioSolver is a Solver: clauses, variables, budgets and models go
// through the inherited interface, so cnf::SequentialMiter and the attacks
// use it unchanged. solve() is overridden: with N > 1 workers it clones the
// problem (including everything learnt so far) into N fresh solvers with
// diversified configurations — different seeds, initial polarities, restart
// pacing and random-decision rates — and races them on a shared
// util::ThreadPool. The first worker to return Sat/Unsat raises the
// interrupt flag of the others (first-winner cancellation); the winner's
// model / failed-assumption set / statistics are folded back into this
// solver, and its low-LBD learnt clauses are imported so the next race (and
// the incremental attack loop around it) keeps the derived knowledge.
//
// While the race runs, workers additionally trade root units and glue
// learnts (LBD <= 2) through a lock-free bounded ClauseExchange: each worker
// publishes as it learns and imports the others' clauses at its restart
// boundaries, so a hard instance is attacked with the union of everyone's
// derived knowledge instead of N isolated searches. Sharing defaults on and
// is controlled by CUTELOCK_SAT_SHARE (0 disables); it is trivially off
// under CUTELOCK_BENCH_STABLE=1 because stable mode forces workers = 1.
//
// Portfolio answers are deterministic in *verdict* (Sat/Unsat agree with the
// single solver) but not in *model* or timing — bench harnesses therefore
// force workers = 1 under CUTELOCK_BENCH_STABLE=1 (see bench_common).
#pragma once

#include <cstddef>

#include "sat/solver.hpp"

namespace cl::sat {

class PortfolioSolver : public Solver {
 public:
  /// `workers` <= 1 degrades to the plain (deterministic) Solver. Live
  /// clause sharing between the racing workers starts from CUTELOCK_SAT_SHARE
  /// (default on); override with set_share().
  explicit PortfolioSolver(std::size_t workers = 1);

  Result solve(const std::vector<Lit>& assumptions = {}) override;

  std::size_t workers() const { return workers_; }

  /// Live clause sharing during races (tests override the env default).
  void set_share(bool share) { share_ = share; }
  bool share() const { return share_; }

  /// Clauses traded through the exchange over this solver's lifetime
  /// (published by any worker / adopted by another worker).
  std::uint64_t shared_published() const { return shared_published_; }
  std::uint64_t shared_dropped() const { return shared_dropped_; }

  /// The diversified configuration handed to worker `index` (worker 0 runs
  /// the reference config). Exposed for tests and docs.
  static Config worker_config(std::size_t index);

 private:
  std::size_t workers_;
  bool share_;
  std::size_t imported_learnts_ = 0;  // lifetime import budget consumed
  std::uint64_t shared_published_ = 0;
  std::uint64_t shared_dropped_ = 0;
};

}  // namespace cl::sat
