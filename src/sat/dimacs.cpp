#include "sat/dimacs.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cl::sat {

Dimacs read_dimacs(std::istream& in) {
  Dimacs d;
  std::string tok;
  std::vector<int> clause;
  bool saw_header = false;
  while (in >> tok) {
    if (tok == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (tok == "p") {
      std::string fmt;
      int nc = 0;
      if (!(in >> fmt >> d.num_vars >> nc) || fmt != "cnf") {
        throw std::runtime_error("dimacs: bad header");
      }
      saw_header = true;
      continue;
    }
    const int lit = std::stoi(tok);
    if (lit == 0) {
      // Reject malformed clauses at the boundary instead of letting the
      // solver's add_clause simplification silently paper over them:
      // a repeated literal is a typo, a complementary pair a tautology the
      // producer almost certainly did not mean to emit.
      for (std::size_t i = 0; i < clause.size(); ++i) {
        for (std::size_t j = i + 1; j < clause.size(); ++j) {
          if (clause[i] == clause[j]) {
            throw std::runtime_error("dimacs: duplicate literal in clause");
          }
          if (clause[i] == -clause[j]) {
            throw std::runtime_error("dimacs: contradictory literal in clause");
          }
        }
      }
      d.clauses.push_back(clause);
      clause.clear();
    } else {
      if (std::abs(lit) > d.num_vars) {
        if (!saw_header) {
          d.num_vars = std::abs(lit);
        } else {
          throw std::runtime_error("dimacs: literal exceeds declared vars");
        }
      }
      clause.push_back(lit);
    }
  }
  if (!clause.empty()) d.clauses.push_back(clause);
  return d;
}

Dimacs read_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return read_dimacs(in);
}

Var load_dimacs(Solver& solver, const Dimacs& d) {
  const Var base = solver.num_vars();
  for (int i = 0; i < d.num_vars; ++i) solver.new_var();
  for (const auto& clause : d.clauses) {
    std::vector<Lit> lits;
    lits.reserve(clause.size());
    for (int l : clause) {
      const Var v = base + std::abs(l) - 1;
      lits.push_back(Lit(v, l < 0));
    }
    solver.add_clause(std::move(lits));
  }
  return base;
}

std::string write_dimacs_string(const Dimacs& d) {
  std::ostringstream out;
  out << "p cnf " << d.num_vars << ' ' << d.clauses.size() << '\n';
  for (const auto& clause : d.clauses) {
    for (int l : clause) out << l << ' ';
    out << "0\n";
  }
  return out.str();
}

}  // namespace cl::sat
