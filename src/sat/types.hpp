// Core SAT types shared by the solver, the clause arena, and the
// preprocessor: variables, literals, solver results, tri-state values.
// Split out of solver.hpp so sat/arena.hpp and sat/preprocess.hpp can be
// included without pulling in the whole solver.
#pragma once

#include <cstdint>

namespace cl::sat {

/// 0-based variable index.
using Var = std::int32_t;

/// Literal: encodes (variable, sign) as 2*var + (negated ? 1 : 0).
class Lit {
 public:
  Lit() : code_(-2) {}
  Lit(Var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {}

  static Lit from_code(std::int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  Var var() const { return code_ >> 1; }
  bool negated() const { return code_ & 1; }
  Lit operator~() const { return from_code(code_ ^ 1); }
  std::int32_t code() const { return code_; }

  bool operator==(const Lit& o) const = default;
  bool operator<(const Lit& o) const { return code_ < o.code_; }

 private:
  std::int32_t code_;
};

inline Lit pos(Var v) { return Lit(v, false); }
inline Lit neg(Var v) { return Lit(v, true); }

enum class Result : std::uint8_t { Sat, Unsat, Unknown };

/// Tri-state assignment value.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

}  // namespace cl::sat
