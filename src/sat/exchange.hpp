// Live clause sharing for portfolio races.
//
// A ClauseExchange is a bounded, lock-free broadcast buffer that diversified
// CDCL workers racing the same problem use to trade derived knowledge
// *during* the race (not just when the winner folds back): every worker
// publishes its root-level units and glue learnts (LBD <= 2) as it learns
// them, and imports what the others published at its restart boundaries.
// Sharing learnt clauses between the workers is sound because every worker
// solves the same clause database (assumptions are decisions, so CDCL
// learnts are consequences of the database alone).
//
// The buffer is best-effort by design — publishing never blocks and never
// waits for readers:
//   * bounded: a fixed ring of fixed-width slots; clauses wider than
//     kMaxLits are not shared (glue learnts are short in practice),
//   * lossy: a publisher that collides with a concurrent writer on the same
//     slot drops its clause, and a reader that falls a full ring behind
//     skips ahead,
//   * duplicate-tolerant: slot reuse can hand a reader the same clause
//     twice; importers dedup on their side (Solver keeps a hash set of
//     imported clauses).
// Torn reads are impossible: each slot carries a seqlock counter (odd while
// a writer is inside) and the payload is relaxed atomics, so a reader whose
// before/after counters disagree discards the slot.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sat/solver.hpp"

namespace cl::sat {

class ClauseExchange {
 public:
  /// Widest clause the exchange carries. Root units and LBD<=2 learnts are
  /// almost always this short; longer ones are simply not shared.
  static constexpr std::size_t k_max_lits = 8;

  /// `capacity` is rounded up to at least 64 slots.
  explicit ClauseExchange(std::size_t capacity = 1024);

  /// Publish `lits[0..n)` from worker `source`. Best-effort: drops
  /// oversized clauses and writer/writer collisions. Returns whether the
  /// clause was actually published. Thread-safe.
  bool publish(std::size_t source, const Lit* lits, std::size_t n);

  /// A reader's position in the stream. One per importing worker.
  struct Cursor {
    std::uint64_t next = 0;
  };

  /// Invoke `fn(lits, n)` for every clause published since `cursor` by a
  /// worker other than `self`, then advance the cursor. Lossy when the
  /// reader lags more than a full ring behind. Thread-safe.
  template <typename Fn>
  void collect(Cursor& cursor, std::size_t self, Fn&& fn) const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (cursor.next >= head) return;
    // Skip ahead if the ring already lapped the cursor: those slots have
    // been (or are being) overwritten.
    const std::uint64_t n = slots_.size();
    if (head - cursor.next > n) cursor.next = head - n;
    Lit buf[k_max_lits];
    for (; cursor.next < head; ++cursor.next) {
      const Slot& slot = slots_[cursor.next % n];
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 & 1) continue;  // writer inside
      const std::uint32_t source = slot.source.load(std::memory_order_relaxed);
      const std::uint32_t size = slot.size.load(std::memory_order_relaxed);
      if (size == 0 || size > k_max_lits) continue;  // never written / torn
      for (std::uint32_t i = 0; i < size; ++i) {
        buf[i] = Lit::from_code(slot.lits[i].load(std::memory_order_relaxed));
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
      if (source == self) continue;
      fn(buf, static_cast<std::size_t>(size));
    }
  }

  /// Clauses successfully published / dropped on contention or width.
  std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // seqlock: odd while being written
    std::atomic<std::uint32_t> source{0};
    std::atomic<std::uint32_t> size{0};
    std::atomic<std::int32_t> lits[k_max_lits];
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace cl::sat
