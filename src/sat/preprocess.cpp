#include "sat/preprocess.hpp"

#include <algorithm>

#include "sat/solver.hpp"

namespace cl::sat {

// ---- Remapper ---------------------------------------------------------------

Remapper::Record& Remapper::push(Var v) {
  if (record_of_var_.size() <= static_cast<std::size_t>(v)) {
    record_of_var_.resize(static_cast<std::size_t>(v) + 1, -1);
  }
  record_of_var_[static_cast<std::size_t>(v)] =
      static_cast<std::int32_t>(stack_.size());
  stack_.emplace_back();
  stack_.back().v = v;
  ++live_records_;
  return stack_.back();
}

Remapper::Record Remapper::take(Var v) {
  const std::int32_t idx = record_of_var_[static_cast<std::size_t>(v)];
  record_of_var_[static_cast<std::size_t>(v)] = -1;
  Record out = std::move(stack_[static_cast<std::size_t>(idx)]);
  // The stack slot stays (reconstruction order must be preserved for the
  // records around it) but is marked revived so extend() skips it.
  Record& slot = stack_[static_cast<std::size_t>(idx)];
  slot.v = v;
  slot.revived = true;
  slot.pos.clear();
  slot.neg.clear();
  out.revived = false;
  --live_records_;
  return out;
}

void Remapper::extend(std::vector<LBool>& model) const {
  // Newest elimination first: a removed clause can only mention variables
  // that were still in the formula at its elimination time, i.e. variables
  // eliminated later (already reconstructed by this walk) or never (assigned
  // by the search).
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->revived) continue;
    const auto vi = static_cast<std::size_t>(it->v);
    model[vi] = LBool::False;
    for (const std::vector<Lit>& cl : it->pos) {
      bool satisfied = false;
      for (const Lit& l : cl) {
        if (l.var() == it->v) continue;
        if ((model[static_cast<std::size_t>(l.var())] == LBool::True) !=
            l.negated()) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        // This pos-clause needs v True. No neg-clause can simultaneously
        // need v False: their resolvent would be unsatisfied under the
        // current partial model, yet every non-tautological resolvent was
        // added back to the formula the model satisfies.
        model[vi] = LBool::True;
        break;
      }
    }
  }
}

// ---- Preprocessor -----------------------------------------------------------

Preprocessor::Preprocessor(Solver& solver, Limits limits)
    : s_(solver), limits_(limits) {}

bool Preprocessor::clause_root_satisfied(CRef c) const {
  const std::uint32_t n = s_.arena_.size(c);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (s_.lit_value(s_.arena_.lit(c, i)) == LBool::True) return true;
  }
  return false;
}

void Preprocessor::remove_clause(CRef c) {
  // Re-queue the variables losing an occurrence: they may have just become
  // eliminable (fewer occurrences / newly pure).
  const std::uint32_t n = s_.arena_.size(c);
  for (std::uint32_t i = 0; i < n; ++i) touch(s_.arena_.lit(c, i).var());
  s_.remove_clause_ref(c);
}

void Preprocessor::touch(Var v) {
  const auto vi = static_cast<std::size_t>(v);
  if (in_queue_[vi] || s_.frozen_[vi] || s_.remapper_.eliminated(v)) return;
  in_queue_[vi] = true;
  queue_.push_back(v);
}

bool Preprocessor::run() {
  if (!s_.ok_) return false;
  // Root reasons would otherwise pin clauses (remove_clause_ref clears one
  // slot, but wholesale clearing up front is simpler and always sound:
  // conflict analysis never resolves on level-0 assignments).
  s_.clear_root_reasons();

  occ_.assign(s_.watches_.size(), {});
  const auto index_clause = [&](CRef c) {
    const std::uint32_t n = s_.arena_.size(c);
    for (std::uint32_t i = 0; i < n; ++i) {
      occ_[static_cast<std::size_t>(s_.arena_.lit(c, i).code())].push_back(c);
    }
  };
  for (const CRef c : s_.clauses_) {
    if (s_.arena_.dead(c)) continue;
    if (clause_root_satisfied(c)) {
      s_.remove_clause_ref(c);
      continue;
    }
    index_clause(c);
  }
  for (const CRef c : s_.learnts_) {
    if (s_.arena_.dead(c)) continue;
    if (clause_root_satisfied(c)) {
      s_.remove_clause_ref(c);
      continue;
    }
    index_clause(c);
  }

  in_queue_.assign(static_cast<std::size_t>(s_.num_vars()), false);
  queue_.clear();
  for (Var v = 0; v < s_.num_vars(); ++v) {
    queue_.push_back(v);
    in_queue_[static_cast<std::size_t>(v)] = true;
  }
  // FIFO to fixpoint: eliminations re-queue the variables they touched.
  std::size_t qhead = 0;
  while (qhead < queue_.size()) {
    if (!s_.ok_) return false;
    const Var v = queue_[qhead++];
    in_queue_[static_cast<std::size_t>(v)] = false;
    try_eliminate(v);
  }
  s_.compact_clause_lists();
  s_.maybe_gc();
  return s_.ok_;
}

namespace {

/// Resolve p and q on pivot v into `out`. Returns false (tautology) when the
/// resolvent contains a complementary pair.
bool resolve(const std::vector<Lit>& p, const std::vector<Lit>& q, Var v,
             std::vector<Lit>& out) {
  out.clear();
  for (const Lit& l : p) {
    if (l.var() != v) out.push_back(l);
  }
  for (const Lit& l : q) {
    if (l.var() != v) out.push_back(l);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  // Codes 2v and 2v+1 are adjacent after sorting, so complementary pairs
  // land next to each other.
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i] == ~out[i + 1]) return false;
  }
  return true;
}

}  // namespace

bool Preprocessor::try_eliminate(Var v) {
  const auto vi = static_cast<std::size_t>(v);
  if (s_.frozen_[vi] || s_.remapper_.eliminated(v)) return false;
  if (s_.assigns_[vi] != LBool::Undef) return false;

  // Gather live occurrences, compacting stale (dead / root-satisfied)
  // entries out of the lists as we go.
  std::vector<CRef> side_problem[2];
  std::vector<CRef> side_learnt[2];
  for (int sign = 0; sign < 2; ++sign) {
    const Lit l(v, sign == 1);
    auto& list = occ_[static_cast<std::size_t>(l.code())];
    std::size_t w = 0;
    for (const CRef c : list) {
      if (s_.arena_.dead(c)) continue;
      if (clause_root_satisfied(c)) {
        remove_clause(c);
        continue;
      }
      list[w++] = c;
      (s_.arena_.learnt(c) ? side_learnt : side_problem)[sign].push_back(c);
    }
    list.resize(w);
  }
  const std::size_t n_pos = side_problem[0].size();
  const std::size_t n_neg = side_problem[1].size();
  const bool pure = n_pos == 0 || n_neg == 0;
  // Pure literals are exempt from the occurrence bound: eliminating them
  // adds no resolvents, only removes clauses.
  if (!pure && n_pos + n_neg > limits_.max_occurrences) return false;

  // Compute the resolvents; any over-long resolvent or formula growth
  // vetoes the elimination.
  std::vector<std::vector<Lit>> resolvents;
  if (!pure) {
    const std::size_t max_resolvents =
        n_pos + n_neg + static_cast<std::size_t>(limits_.max_clause_growth);
    for (const CRef p : side_problem[0]) {
      const std::vector<Lit> p_lits = s_.arena_.lits(p);
      for (const CRef q : side_problem[1]) {
        if (!resolve(p_lits, s_.arena_.lits(q), v, scratch_)) continue;
        if (scratch_.size() > limits_.max_resolvent_lits) return false;
        resolvents.push_back(scratch_);
        if (resolvents.size() > max_resolvents) return false;
      }
    }
  }

  // Commit. Save both polarity sides: extend() only reads pos, but revival
  // needs the full set to restore equivalence.
  Remapper::Record& rec = s_.remapper_.push(v);
  for (const CRef c : side_problem[0]) rec.pos.push_back(s_.arena_.lits(c));
  for (const CRef c : side_problem[1]) rec.neg.push_back(s_.arena_.lits(c));
  ++s_.stats_.vars_eliminated;

  const std::size_t trail_before = s_.trail_.size();
  for (int sign = 0; sign < 2; ++sign) {
    for (const CRef c : side_problem[sign]) remove_clause(c);
    // Learnts mentioning the pivot are implied by the problem clauses being
    // distributed; dropping them (without saving) is sound.
    for (const CRef c : side_learnt[sign]) {
      if (!s_.arena_.dead(c)) remove_clause(c);
    }
  }
  for (const std::vector<Lit>& r : resolvents) {
    const std::size_t before = s_.clauses_.size();
    if (!s_.add_clause(r)) return true;  // refuted outright
    if (s_.clauses_.size() > before) {
      const CRef nc = s_.clauses_.back();
      const std::uint32_t n = s_.arena_.size(nc);
      for (std::uint32_t i = 0; i < n; ++i) {
        const Lit l = s_.arena_.lit(nc, i);
        occ_[static_cast<std::size_t>(l.code())].push_back(nc);
        touch(l.var());
      }
    }
  }
  // add_clause may have unit-propagated at the root, recording reasons that
  // would pin clauses this run still wants to remove.
  if (s_.trail_.size() != trail_before) s_.clear_root_reasons();
  return true;
}

}  // namespace cl::sat
