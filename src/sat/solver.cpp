#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sat/exchange.hpp"
#include "util/env.hpp"
#include "util/fnv.hpp"

namespace cl::sat {

Solver::Solver() : gc_frac_(util::sat_gc_frac_from_env()) {
  level_stamp_.push_back(0);  // slot for decision level 0
}

Solver::~Solver() = default;

std::uint64_t Solver::next_rand() {
  // xorshift64*: deterministic per Config::seed, cheap enough for the
  // decision loop.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return rng_state_ * 0x2545F4914F6CDD1DULL;
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(activity_.size());
  activity_.push_back(0.0);
  assigns_.push_back(LBool::Undef);
  bool initial_phase = config_.default_phase;
  if (config_.random_initial_phase) initial_phase = (next_rand() & 1) != 0;
  phase_.push_back(initial_phase);
  best_phase_.push_back(initial_phase);
  reason_.push_back(k_cref_undef);
  level_.push_back(0);
  seen_.push_back(false);
  frozen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  level_stamp_.push_back(0);
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

void Solver::set_config(const Config& config) {
  if (decision_level() != 0) {
    throw std::logic_error("set_config: only legal at decision level 0");
  }
  config_ = config;
  max_learnts_ = config.max_learnts;
  rng_state_ = config.seed * 0x9E3779B97F4A7C15ULL + 0x853c49e6748fea9bULL;
  if (rng_state_ == 0) rng_state_ = 0x853c49e6748fea9bULL;
  for (Var v = 0; v < num_vars(); ++v) {
    if (assigns_[v] != LBool::Undef) continue;  // keep root-implied values
    bool initial_phase = config_.default_phase;
    if (config_.random_initial_phase) initial_phase = (next_rand() & 1) != 0;
    phase_[v] = initial_phase;
  }
  best_phase_ = phase_;
  best_trail_size_ = 0;
}

void Solver::set_frozen(Var v, bool frozen) {
  frozen_[static_cast<std::size_t>(v)] = frozen;
}

void Solver::copy_problem_into(Solver& dst) const {
  if (decision_level() != 0) {
    throw std::logic_error("copy_problem_into: only legal at decision level 0");
  }
  if (dst.num_vars() > num_vars()) {
    throw std::invalid_argument("copy_problem_into: destination has extra variables");
  }
  while (dst.num_vars() < num_vars()) dst.new_var();
  if (!ok_) {
    dst.ok_ = false;
    return;
  }
  for (const Lit& l : trail_) dst.add_clause({l});  // root-level units
  for (const CRef c : clauses_) dst.add_clause(arena_.lits(c));
  // Learnts are implied by the problem clauses, so replaying them seeds the
  // clone with everything this solver has derived so far.
  for (const CRef c : learnts_) dst.add_clause(arena_.lits(c));
}

LBool Solver::lit_value(Lit l) const {
  const LBool v = assigns_[l.var()];
  if (v == LBool::Undef) return LBool::Undef;
  const bool b = (v == LBool::True) != l.negated();
  return b ? LBool::True : LBool::False;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  if (decision_level() != 0) {
    throw std::logic_error("add_clause: only legal at decision level 0");
  }
  // A clause over an eliminated variable re-opens it: revive first (re-adds
  // the clauses BVE removed and freezes the variable) so the incremental
  // database stays equivalent to the original problem.
  if (!remapper_.empty()) {
    for (const Lit& l : lits) {
      if (l.var() >= 0 && l.var() < num_vars() && remapper_.eliminated(l.var())) {
        revive(l.var());
        if (!ok_) return false;
      }
    }
  }
  // Simplify: sort, drop duplicates, detect tautology, drop false literals,
  // detect satisfied clauses.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = Lit::from_code(-2);
  for (Lit l : lits) {
    if (l.var() < 0 || l.var() >= num_vars()) {
      throw std::invalid_argument("add_clause: unknown variable");
    }
    if (l == prev) continue;
    if (prev.code() >= 0 && l == ~prev) return true;  // tautology
    const LBool v = lit_value(l);
    if (v == LBool::True) return true;  // already satisfied at level 0
    if (v == LBool::False) { prev = l; continue; }
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], k_cref_undef);
    if (propagate() != k_cref_undef) ok_ = false;
    return ok_;
  }
  const CRef c = arena_.alloc(out, /*learnt=*/false);
  clauses_.push_back(c);
  attach(c);
  return true;
}

void Solver::attach(CRef c) {
  const Lit l0 = arena_.lit(c, 0);
  const Lit l1 = arena_.lit(c, 1);
  if (arena_.size(c) == 2) {
    bin_watches_[(~l0).code()].push_back({l1, c});
    bin_watches_[(~l1).code()].push_back({l0, c});
    return;
  }
  watches_[(~l0).code()].push_back({c, l1});
  watches_[(~l1).code()].push_back({c, l0});
}

void Solver::detach(CRef c) {
  if (arena_.size(c) == 2) {
    for (int i = 0; i < 2; ++i) {
      auto& ws = bin_watches_[(~arena_.lit(c, static_cast<std::uint32_t>(i))).code()];
      for (std::size_t j = 0; j < ws.size(); ++j) {
        if (ws[j].clause == c) {
          ws[j] = ws.back();
          ws.pop_back();
          break;
        }
      }
    }
    return;
  }
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[(~arena_.lit(c, static_cast<std::uint32_t>(i))).code()];
    for (std::size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].clause == c) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::enqueue(Lit l, CRef reason) {
  assigns_[l.var()] = l.negated() ? LBool::False : LBool::True;
  phase_[l.var()] = !l.negated();
  reason_[l.var()] = reason;
  level_[l.var()] = decision_level();
  trail_.push_back(l);
}

CRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    // Binary watchers first: the implied literal is read straight from the
    // watcher, so the common two-literal case never touches clause memory.
    for (const BinWatcher& bw : bin_watches_[p.code()]) {
      const LBool v = lit_value(bw.other);
      if (v == LBool::True) continue;
      const CRef c = bw.clause;
      if (v == LBool::False) {
        propagate_head_ = trail_.size();
        return c;
      }
      // analyze() expects the implied literal at position 0 of its reason.
      if (arena_.lit(c, 0) != bw.other) arena_.swap_lits(c, 0, 1);
      enqueue(bw.other, c);
    }
    auto& ws = watches_[p.code()];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (lit_value(w.blocker) == LBool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      const CRef c = w.clause;
      // Normalize: ensure the false literal ~p is at position 1.
      const Lit not_p = ~p;
      if (arena_.lit(c, 0) == not_p) arena_.swap_lits(c, 0, 1);
      // If first literal is true, keep watching.
      const Lit first = arena_.lit(c, 0);
      if (lit_value(first) == LBool::True) {
        ws[j++] = {c, first};
        ++i;
        continue;
      }
      // Search a new literal to watch.
      bool found = false;
      const std::uint32_t n = arena_.size(c);
      for (std::uint32_t k = 2; k < n; ++k) {
        if (lit_value(arena_.lit(c, k)) != LBool::False) {
          arena_.swap_lits(c, 1, k);
          watches_[(~arena_.lit(c, 1)).code()].push_back({c, first});
          found = true;
          break;
        }
      }
      if (found) {
        ++i;  // this watcher is dropped (moved to the other list)
        continue;
      }
      // Unit or conflicting.
      if (lit_value(first) == LBool::False) {
        // Conflict: restore remaining watchers and report.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        propagate_head_ = trail_.size();
        return c;
      }
      enqueue(first, c);
      ws[j++] = {c, first};
      ++i;
    }
    ws.resize(j);
  }
  return k_cref_undef;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) heap_percolate_up(heap_pos_[v]);
}

void Solver::bump_clause(CRef c) {
  arena_.set_activity(c, arena_.activity(c) + clause_inc_);
  if (arena_.activity(c) > 1e20) {
    // Rescale the learnt DB (the only clauses whose activity is compared);
    // a hot problem clause keeps its large value and simply re-triggers.
    for (const CRef l : learnts_) {
      arena_.set_activity(l, arena_.activity(l) * 1e-20);
    }
    clause_inc_ *= 1e-20;
  }
}

int Solver::clause_lbd(const std::vector<Lit>& lits) {
  // Exact glue: number of distinct decision levels > 0 among the literals,
  // via a stamped per-level scratch array (no hashing collisions). Dummy
  // decision levels (assumptions already satisfied when placed, e.g.
  // duplicated assumption literals) can push decision levels past
  // num_vars, so the scratch array grows on demand.
  if (level_stamp_.size() <= static_cast<std::size_t>(decision_level())) {
    level_stamp_.resize(static_cast<std::size_t>(decision_level()) + 1, 0);
  }
  ++lbd_stamp_;
  int lbd = 0;
  for (const Lit& l : lits) {
    const int lev = level_[l.var()];
    if (lev <= 0) continue;
    if (level_stamp_[static_cast<std::size_t>(lev)] != lbd_stamp_) {
      level_stamp_[static_cast<std::size_t>(lev)] = lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

int Solver::clause_lbd(CRef c) {
  if (level_stamp_.size() <= static_cast<std::size_t>(decision_level())) {
    level_stamp_.resize(static_cast<std::size_t>(decision_level()) + 1, 0);
  }
  ++lbd_stamp_;
  int lbd = 0;
  const std::uint32_t n = arena_.size(c);
  for (std::uint32_t i = 0; i < n; ++i) {
    const int lev = level_[arena_.lit(c, i).var()];
    if (lev <= 0) continue;
    if (level_stamp_[static_cast<std::size_t>(lev)] != lbd_stamp_) {
      level_stamp_[static_cast<std::size_t>(lev)] = lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::analyze(CRef conflict, std::vector<Lit>& learnt,
                     int& backtrack_level) {
  learnt.clear();
  learnt.push_back(Lit::from_code(-2));  // slot for the asserting literal
  int counter = 0;
  Lit p = Lit::from_code(-2);
  std::size_t trail_index = trail_.size();
  CRef reason = conflict;

  do {
    bump_clause(reason);
    // Update-on-use: a learnt clause re-derived during analysis may now sit
    // at a lower glue level; keeping the minimum protects it from reduction.
    if (arena_.learnt(reason) && arena_.size(reason) > 2) {
      const int glue = clause_lbd(reason);
      if (glue < arena_.lbd(reason)) arena_.set_lbd(reason, glue);
    }
    // Start at 1 when `reason` is the reason of p (lit 0 == p).
    const std::uint32_t start = (p.code() >= 0) ? 1 : 0;
    const std::uint32_t n = arena_.size(reason);
    for (std::uint32_t k = start; k < n; ++k) {
      const Lit q = arena_.lit(reason, k);
      if (!seen_[q.var()] && level_[q.var()] > 0) {
        seen_[q.var()] = true;
        bump_var(q.var());
        if (level_[q.var()] >= decision_level()) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Select next literal on the trail to resolve on.
    while (!seen_[trail_[trail_index - 1].var()]) --trail_index;
    --trail_index;
    p = trail_[trail_index];
    seen_[p.var()] = false;
    reason = reason_[p.var()];
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Mark remaining literals for minimization bookkeeping.
  analyze_clear_ = learnt;
  for (const Lit& l : learnt) {
    if (l.code() >= 0) seen_[l.var()] = true;
  }
  // Clause minimization: drop literals implied by the rest of the clause.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract_levels |= 1u << (level_[learnt[i].var()] & 31);
  }
  const std::size_t before_minimize = learnt.size();
  std::size_t out = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].var()] == k_cref_undef ||
        !literal_redundant(learnt[i], abstract_levels)) {
      learnt[out++] = learnt[i];
    }
  }
  learnt.resize(out);
  stats_.minimized_literals += before_minimize - out;

  for (const Lit& l : analyze_clear_) {
    if (l.code() >= 0) seen_[l.var()] = false;
  }
  analyze_clear_.clear();

  // Compute backtrack level: max level among learnt[1..].
  if (learnt.size() == 1) {
    backtrack_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[learnt[1].var()];
  }
}

bool Solver::literal_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t top = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit cur = analyze_stack_.back();
    analyze_stack_.pop_back();
    const CRef c = reason_[cur.var()];
    if (c == k_cref_undef) {
      // Hit a decision: not redundant; undo marks made during this check.
      for (std::size_t i = top; i < analyze_clear_.size(); ++i) {
        seen_[analyze_clear_[i].var()] = false;
      }
      analyze_clear_.resize(top);
      return false;
    }
    const std::uint32_t n = arena_.size(c);
    for (std::uint32_t k = 1; k < n; ++k) {
      const Lit q = arena_.lit(c, k);
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      if (reason_[q.var()] == k_cref_undef ||
          ((1u << (level_[q.var()] & 31)) & abstract_levels) == 0) {
        for (std::size_t i = top; i < analyze_clear_.size(); ++i) {
          seen_[analyze_clear_[i].var()] = false;
        }
        analyze_clear_.resize(top);
        return false;
      }
      seen_[q.var()] = true;
      analyze_stack_.push_back(q);
      analyze_clear_.push_back(q);
    }
  }
  return true;
}

void Solver::backtrack(int target_level) {
  if (decision_level() <= target_level) return;
  const int limit = level_limits_[target_level];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= limit; --i) {
    const Var v = trail_[static_cast<std::size_t>(i)].var();
    assigns_[v] = LBool::Undef;
    reason_[v] = k_cref_undef;
    if (heap_pos_[v] < 0) heap_insert(v);
  }
  trail_.resize(static_cast<std::size_t>(limit));
  level_limits_.resize(static_cast<std::size_t>(target_level));
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch() {
  if (config_.random_decision_freq > 0.0 && !heap_.empty()) {
    // Occasional random decision (portfolio diversification). The variable
    // stays in the heap; the VSIDS pop below skips assigned entries anyway.
    const double roll = static_cast<double>(next_rand() >> 11) * 0x1.0p-53;
    if (roll < config_.random_decision_freq) {
      const Var v = heap_[static_cast<std::size_t>(next_rand() % heap_.size())];
      if (assigns_[v] == LBool::Undef &&
          (remapper_.empty() || !remapper_.eliminated(v))) {
        ++stats_.decisions;
        ++stats_.random_decisions;
        return Lit(v, !phase_[v]);
      }
    }
  }
  while (!heap_empty()) {
    const Var v = heap_pop();
    if (assigns_[v] != LBool::Undef) continue;
    // Eliminated variables appear in no clause: deciding them is wasted
    // work, and their model values come from Remapper::extend anyway.
    if (!remapper_.empty() && remapper_.eliminated(v)) continue;
    ++stats_.decisions;
    return Lit(v, !phase_[v]);
  }
  return Lit::from_code(-2);
}

void Solver::reduce_db() {
  // Keep clauses with low LBD or high activity; delete the bottom half.
  // Glue clauses (LBD <= 2) and binaries are never deleted.
  std::sort(learnts_.begin(), learnts_.end(), [this](CRef a, CRef b) {
    const int la = arena_.lbd(a);
    const int lb = arena_.lbd(b);
    if (la != lb) return la > lb;
    return arena_.activity(a) < arena_.activity(b);
  });
  const std::size_t target = learnts_.size() / 2;
  std::vector<CRef> kept;
  kept.reserve(learnts_.size() - target);
  std::size_t removed = 0;
  for (const CRef c : learnts_) {
    bool locked = false;
    // A clause is locked if it is the reason of a current assignment.
    const Lit first = arena_.lit(c, 0);
    if (lit_value(first) == LBool::True && reason_[first.var()] == c) {
      locked = true;
    }
    const bool glue = arena_.lbd(c) <= 2 || arena_.size(c) <= 2;
    if (removed < target && !locked && !glue) {
      detach(c);
      arena_.free_clause(c);
      ++removed;
      ++stats_.learnts_deleted;
    } else {
      // Still inside the deletion quota but spared: record when the glue
      // policy (not a lock) is what saved the clause.
      if (removed < target && !locked && glue) ++stats_.glue_protected;
      kept.push_back(c);
    }
  }
  learnts_ = std::move(kept);
}

void Solver::analyze_final(Lit p) {
  conflict_assumptions_.clear();
  conflict_assumptions_.push_back(p);
  if (decision_level() == 0) return;
  seen_[p.var()] = true;
  for (int i = static_cast<int>(trail_.size()) - 1;
       i >= level_limits_[0]; --i) {
    const Var v = trail_[static_cast<std::size_t>(i)].var();
    if (!seen_[v]) continue;
    if (reason_[v] == k_cref_undef) {
      if (level_[v] > 0 && trail_[static_cast<std::size_t>(i)] != p) {
        conflict_assumptions_.push_back(trail_[static_cast<std::size_t>(i)]);
      }
    } else {
      const CRef r = reason_[v];
      const std::uint32_t n = arena_.size(r);
      for (std::uint32_t k = 1; k < n; ++k) {
        const Var u = arena_.lit(r, k).var();
        if (level_[u] > 0) seen_[u] = true;
      }
    }
    seen_[v] = false;
  }
  seen_[p.var()] = false;
}

void Solver::set_exchange(ClauseExchange* exchange, std::size_t source) {
  exchange_ = exchange;
  exchange_source_ = source;
  exchange_cursor_ = 0;
  imported_hashes_.clear();
}

namespace {

/// Order-independent clause identity for reader-side dedup: FNV-1a over the
/// sorted literal codes.
std::uint64_t clause_hash(const Lit* lits, std::size_t n) {
  std::int32_t codes[ClauseExchange::k_max_lits];
  for (std::size_t i = 0; i < n; ++i) codes[i] = lits[i].code();
  std::sort(codes, codes + n);
  std::uint64_t h = util::k_fnv_offset;
  for (std::size_t i = 0; i < n; ++i) {
    util::fnv1a_mix(h, static_cast<std::uint32_t>(codes[i]));
  }
  return h;
}

}  // namespace

void Solver::export_learnt(const std::vector<Lit>& learnt, int lbd) {
  if (learnt.size() > ClauseExchange::k_max_lits) return;
  if (learnt.size() > 1 && lbd > 2) return;  // units and glue only
  if (exchange_->publish(exchange_source_, learnt.data(), learnt.size())) {
    ++stats_.shared_exported;
  }
}

void Solver::import_shared() {
  // Caller backtracked to level 0 (import happens at restart boundaries), so
  // add_clause is legal; imported clauses are implied by the shared problem
  // database, so a root conflict here is a genuine Unsat verdict (ok_ flips
  // and solve() reports it).
  ClauseExchange::Cursor cursor{exchange_cursor_};
  exchange_->collect(cursor, exchange_source_, [&](const Lit* lits,
                                                   std::size_t n) {
    if (!ok_) return;
    const std::uint64_t h = clause_hash(lits, n);
    const auto it =
        std::lower_bound(imported_hashes_.begin(), imported_hashes_.end(), h);
    if (it != imported_hashes_.end() && *it == h) return;  // already adopted
    imported_hashes_.insert(it, h);
    add_clause(std::vector<Lit>(lits, lits + n));
    ++stats_.shared_imported;
  });
  exchange_cursor_ = cursor.next;
}

double Solver::luby(double y, int i) {
  int size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  if (!ok_) return Result::Unsat;
  conflict_assumptions_.clear();
  backtrack(0);
  if (propagate() != k_cref_undef) {
    ok_ = false;
    return Result::Unsat;
  }
  // Assumptions over eliminated variables: revive them (re-adds the clauses
  // BVE removed, freezes the variable) so the verdict covers the original
  // problem, not the reduced one.
  if (!remapper_.empty()) {
    for (const Lit& a : assumptions) {
      if (a.var() >= 0 && a.var() < num_vars() &&
          remapper_.eliminated(a.var())) {
        revive(a.var());
      }
    }
    if (!ok_) return Result::Unsat;
  }
  // Honour an already-expired wall deadline (or a fired interrupt) before
  // any search: conflicts are the only other place these are read, and an
  // easy instance may never produce one.
  if (time_budget_s_ >= 0 && std::chrono::steady_clock::now() > deadline_) {
    return Result::Unknown;
  }
  if (interrupted()) return Result::Unknown;

  int restart_count = 0;
  std::int64_t conflicts_until_restart = static_cast<std::int64_t>(
      luby(2.0, restart_count) * config_.restart_unit);
  best_trail_size_ = 0;  // best-phase tracking is per solve call

  std::vector<Lit> learnt;
  for (;;) {
    const CRef conflict = propagate();
    if (conflict != k_cref_undef) {
      ++stats_.conflicts;
      // Best-phase caching: snapshot the polarities of the deepest trail
      // seen this call; restarts can re-target it.
      if (trail_.size() > best_trail_size_) {
        best_trail_size_ = trail_.size();
        best_phase_ = phase_;
      }
      if (decision_level() == 0) {
        ok_ = false;
        return Result::Unsat;
      }
      // Conflict below/at the assumption prefix: find which assumptions fail.
      if (static_cast<std::size_t>(decision_level()) <= assumptions.size()) {
        // The conflict depends on assumptions only through decisions; collect
        // them by resolving the conflict fully.
        conflict_assumptions_.clear();
        const std::uint32_t cn = arena_.size(conflict);
        for (std::uint32_t k = 0; k < cn; ++k) {
          const Lit l = arena_.lit(conflict, k);
          if (level_[l.var()] > 0) seen_[l.var()] = true;
        }
        for (int i = static_cast<int>(trail_.size()) - 1;
             i >= level_limits_[0]; --i) {
          const Var v = trail_[static_cast<std::size_t>(i)].var();
          if (!seen_[v]) continue;
          if (reason_[v] == k_cref_undef) {
            conflict_assumptions_.push_back(trail_[static_cast<std::size_t>(i)]);
          } else {
            const CRef r = reason_[v];
            const std::uint32_t rn = arena_.size(r);
            for (std::uint32_t k = 1; k < rn; ++k) {
              const Var u = arena_.lit(r, k).var();
              if (level_[u] > 0) seen_[u] = true;
            }
          }
          seen_[v] = false;
        }
        backtrack(0);
        return Result::Unsat;
      }
      int back_level = 0;
      analyze(conflict, learnt, back_level);
      // Exact LBD of the freshly learnt clause, while levels are live.
      const int learnt_lbd = clause_lbd(learnt);
      if (exchange_ != nullptr) export_learnt(learnt, learnt_lbd);
      if (learnt.size() == 1) {
        // A unit learnt clause is implied by the clause database alone (not
        // the assumptions), so assert it at the root; the decision loop
        // re-places the assumptions afterwards.
        backtrack(0);
        enqueue(learnt[0], k_cref_undef);
      } else {
        // Never backtrack into the assumption prefix: clamp to the prefix
        // boundary. The learnt clause still asserts there — every literal
        // but learnt[0] is false at a level <= back_level <= floor_level.
        // (decision_level() > assumptions.size() here; the prefix-conflict
        // case above already returned.)
        const int floor_level = static_cast<int>(assumptions.size());
        backtrack(std::max(back_level, floor_level));
        const CRef c = arena_.alloc(learnt, /*learnt=*/true, learnt_lbd);
        arena_.set_activity(c, clause_inc_);
        learnts_.push_back(c);
        ++stats_.learned;
        attach(c);
        enqueue(learnt[0], c);
      }
      decay_var_activity();
      clause_inc_ /= 0.999;

      if (conflict_budget_ >= 0 &&
          stats_.conflicts >= static_cast<std::uint64_t>(conflict_budget_)) {
        backtrack(0);
        return Result::Unknown;
      }
      if (interrupted()) {
        backtrack(0);
        return Result::Unknown;
      }
      if (time_budget_s_ >= 0 && --deadline_check_countdown_ <= 0) {
        deadline_check_countdown_ = 256;
        if (std::chrono::steady_clock::now() > deadline_) {
          backtrack(0);
          return Result::Unknown;
        }
      }
      if (--conflicts_until_restart <= 0) {
        ++restart_count;
        ++stats_.restarts;
        conflicts_until_restart = static_cast<std::int64_t>(
            luby(2.0, restart_count) * config_.restart_unit);
        if (config_.use_best_phase && best_trail_size_ > 0) {
          phase_ = best_phase_;
        }
        if (exchange_ != nullptr) {
          // Restart boundary: adopt what the other workers published. Import
          // needs level 0 (full restart instead of the assumption-prefix
          // one); the decision loop re-places the assumptions afterwards.
          backtrack(0);
          import_shared();
          if (!ok_) return Result::Unsat;
        } else {
          backtrack(static_cast<int>(assumptions.size()) <= decision_level()
                        ? static_cast<int>(assumptions.size())
                        : 0);
        }
        if (inprocess_enabled_ && stats_.restarts >= inprocess_next_restarts_) {
          // Inprocessing needs the root (clauses must be unlocked); the
          // decision loop re-places the assumptions afterwards. Doubling
          // intervals keep the amortized cost bounded.
          backtrack(0);
          inprocess();
          if (!ok_) return Result::Unsat;
          inprocess_next_restarts_ *= 2;
        }
        maybe_gc();
      }
      if (learnts_.size() > max_learnts_) {
        reduce_db();
        max_learnts_ = max_learnts_ + max_learnts_ / 10;
        maybe_gc();
      }
    } else {
      if (propagation_budget_ >= 0 &&
          stats_.propagations >= static_cast<std::uint64_t>(propagation_budget_)) {
        backtrack(0);
        return Result::Unknown;
      }
      // Place assumptions as the first decisions.
      if (static_cast<std::size_t>(decision_level()) < assumptions.size()) {
        const Lit a = assumptions[static_cast<std::size_t>(decision_level())];
        const LBool v = lit_value(a);
        if (v == LBool::True) {
          new_decision_level();  // already satisfied; dummy level keeps indexing
          continue;
        }
        if (v == LBool::False) {
          analyze_final(~a);
          backtrack(0);
          return Result::Unsat;
        }
        new_decision_level();
        enqueue(a, k_cref_undef);
        continue;
      }
      const Lit next = pick_branch();
      if (next.code() < 0) {
        // All variables assigned: model found. Copy it out, reconstruct
        // values for preprocessing-eliminated variables, and restore the
        // solver to level 0 so clauses can be added incrementally.
        model_ = assigns_;
        if (!remapper_.empty()) remapper_.extend(model_);
        backtrack(0);
        return Result::Sat;
      }
      new_decision_level();
      enqueue(next, k_cref_undef);
    }
  }
}

bool Solver::model_value(Var v) const {
  if (v < 0 || v >= static_cast<Var>(model_.size())) {
    throw std::out_of_range("model_value: no model for variable");
  }
  return model_[v] == LBool::True;
}

bool Solver::model_value(Lit l) const {
  return model_value(l.var()) != l.negated();
}

void Solver::set_conflict_budget(std::int64_t max_conflicts) {
  conflict_budget_ =
      max_conflicts < 0 ? -1
                        : static_cast<std::int64_t>(stats_.conflicts) + max_conflicts;
}

void Solver::set_propagation_budget(std::int64_t max_propagations) {
  propagation_budget_ =
      max_propagations < 0
          ? -1
          : static_cast<std::int64_t>(stats_.propagations) + max_propagations;
}

void Solver::set_time_budget(double seconds) {
  time_budget_s_ = seconds;
  // Force a clock check at the next conflict: a reused solver re-armed with
  // a shorter deadline must not coast on a countdown left over from the
  // previous budget (up to 256 conflicts of over-run otherwise).
  deadline_check_countdown_ = 0;
  if (seconds >= 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
  }
}

// ---- preprocessing / inprocessing internals ---------------------------------

bool Solver::preprocess() {
  if (decision_level() != 0) {
    throw std::logic_error("preprocess: only legal at decision level 0");
  }
  if (!ok_) return false;
  if (propagate() != k_cref_undef) {
    ok_ = false;
    return false;
  }
  Preprocessor pre(*this);
  return pre.run();
}

void Solver::revive(Var v) {
  // take() clears the eliminated flag before we re-add the clauses, so the
  // add_clause -> revive recursion (clauses mentioning other eliminated
  // variables) terminates.
  Remapper::Record rec = remapper_.take(v);
  frozen_[static_cast<std::size_t>(v)] = true;
  // The variable may have been popped (and skipped) from the decision heap
  // while it was eliminated; put it back so the search can decide it again.
  if (assigns_[v] == LBool::Undef && heap_pos_[v] < 0) heap_insert(v);
  for (auto* side : {&rec.pos, &rec.neg}) {
    for (std::vector<Lit>& cl : *side) {
      if (!ok_) return;
      add_clause(std::move(cl));
    }
  }
}

void Solver::remove_clause_ref(CRef c) {
  // A root-level implication may still name `c` as its reason; clear the
  // slot (root assignments never need their reasons again) so nothing
  // dangles into freed arena words.
  const Lit first = arena_.lit(c, 0);
  if (assigns_[first.var()] != LBool::Undef && reason_[first.var()] == c) {
    reason_[first.var()] = k_cref_undef;
  }
  detach(c);
  arena_.free_clause(c);
}

void Solver::clear_root_reasons() {
  for (const Lit& l : trail_) {
    if (level_[l.var()] == 0) reason_[l.var()] = k_cref_undef;
  }
}

void Solver::compact_clause_lists() {
  std::erase_if(clauses_, [this](CRef c) { return arena_.dead(c); });
  std::erase_if(learnts_, [this](CRef c) { return arena_.dead(c); });
}

void Solver::inprocess() {
  // Level 0, clauses unlocked (root reasons cleared) — reduce_db's lock
  // check and the passes' frees then never collide with the trail.
  clear_root_reasons();
  subsume_pass();
  if (ok_) vivify_pass();
  compact_clause_lists();
  maybe_gc();
}

void Solver::subsume_pass() {
  // Backward subsumption with self-subsuming resolution. Subsumers are
  // problem clauses only (deleting a learnt that subsumes a problem clause
  // would be unsound bookkeeping: learnts are disposable); subsumees are
  // both problem clauses and learnts. Work is bounded by a literal-scan
  // budget so a pathological occurrence profile cannot stall the search.
  std::int64_t scan_budget = std::int64_t{1} << 22;

  // Occurrence lists over every live clause (the subsumee side).
  std::vector<std::vector<CRef>> occ(watches_.size());
  auto index_clause = [&](CRef c) {
    const std::uint32_t n = arena_.size(c);
    for (std::uint32_t i = 0; i < n; ++i) {
      occ[static_cast<std::size_t>(arena_.lit(c, i).code())].push_back(c);
    }
  };
  for (const CRef c : clauses_) {
    if (!arena_.dead(c)) index_clause(c);
  }
  for (const CRef c : learnts_) {
    if (!arena_.dead(c)) index_clause(c);
  }

  // Literal-code stamps identify the current subsumer's literal set.
  std::vector<std::uint32_t> stamp(watches_.size(), 0);
  std::uint32_t cur = 0;

  for (std::size_t ci = 0; ci < clauses_.size() && scan_budget > 0 && ok_;
       ++ci) {
    const CRef c = clauses_[ci];
    if (arena_.dead(c)) continue;
    const std::uint32_t m = arena_.size(c);
    // Root-satisfied clauses are dead weight; drop instead of subsuming with.
    bool satisfied = false;
    for (std::uint32_t i = 0; i < m; ++i) {
      if (lit_value(arena_.lit(c, i)) == LBool::True) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) {
      remove_clause_ref(c);
      continue;
    }
    ++cur;
    std::size_t min_occ = static_cast<std::size_t>(-1);
    Lit min_lit = Lit::from_code(-2);
    for (std::uint32_t i = 0; i < m; ++i) {
      const Lit l = arena_.lit(c, i);
      stamp[static_cast<std::size_t>(l.code())] = cur;
      const std::size_t o = occ[static_cast<std::size_t>(l.code())].size();
      if (o < min_occ) {
        min_occ = o;
        min_lit = l;
      }
    }
    // Scan the shortest occurrence list for clauses c subsumes (every
    // literal of c present) or strengthens (all but one present, that one
    // present flipped: self-subsuming resolution removes it).
    auto& cands = occ[static_cast<std::size_t>(min_lit.code())];
    for (const CRef d : cands) {
      if (d == c || arena_.dead(d)) continue;
      const std::uint32_t dn = arena_.size(d);
      if (dn < m) continue;
      scan_budget -= static_cast<std::int64_t>(dn);
      std::uint32_t found = 0;
      std::uint32_t flipped = 0;
      Lit flip_lit = Lit::from_code(-2);
      for (std::uint32_t i = 0; i < dn; ++i) {
        const Lit dl = arena_.lit(d, i);
        if (stamp[static_cast<std::size_t>(dl.code())] == cur) {
          ++found;
        } else if (stamp[static_cast<std::size_t>((~dl).code())] == cur) {
          ++flipped;
          flip_lit = dl;
        }
      }
      if (found == m) {
        remove_clause_ref(d);
        ++stats_.clauses_subsumed;
      } else if (found == m - 1 && flipped == 1) {
        strengthen_clause(d, flip_lit);
        if (!ok_) return;
        // Unit propagation inside strengthen_clause may have satisfied or
        // falsified c itself; re-validation happens when c's literals are
        // next scanned, which is sound either way.
      }
      if (scan_budget <= 0) break;
    }
  }
}

void Solver::strengthen_clause(CRef d, Lit out_lit) {
  // Remove `out_lit` from `d` in place (order-preserving), reattach with
  // sound root-level watches, and handle the unit/empty collapse.
  detach(d);
  const std::uint32_t dn = arena_.size(d);
  std::uint32_t w = 0;
  for (std::uint32_t i = 0; i < dn; ++i) {
    const Lit dl = arena_.lit(d, i);
    if (dl == out_lit) continue;
    arena_.set_lit(d, w++, dl);
  }
  arena_.shrink(d, w);
  ++stats_.vivified_lits;
  reattach_simplified(d);
}

void Solver::reattach_simplified(CRef d) {
  // `d` is detached and was just shrunk at decision level 0. Fresh watches
  // must sit on non-false literals (a literal falsified before attach would
  // never wake the clause), so partition non-false literals to the front;
  // collapse to a root unit / conflict when fewer than two remain.
  const std::uint32_t n = arena_.size(d);
  std::uint32_t front = 0;
  bool satisfied = false;
  for (std::uint32_t i = 0; i < n; ++i) {
    const LBool v = lit_value(arena_.lit(d, i));
    if (v == LBool::True) satisfied = true;
    if (v != LBool::False) {
      if (i != front) arena_.swap_lits(d, front, i);
      ++front;
    }
  }
  if (satisfied) {
    // Root-satisfied: no longer worth keeping.
    arena_.free_clause(d);
    return;
  }
  if (front == 0) {
    arena_.free_clause(d);
    ok_ = false;
    return;
  }
  if (front == 1) {
    const Lit unit = arena_.lit(d, 0);
    arena_.free_clause(d);
    enqueue(unit, k_cref_undef);
    if (propagate() != k_cref_undef) {
      ok_ = false;
      return;
    }
    // The propagation just recorded reasons for new root assignments;
    // clear them so later frees in this pass cannot dangle.
    clear_root_reasons();
    return;
  }
  if (front < n) arena_.shrink(d, front);
  attach(d);
}

void Solver::vivify_pass() {
  // Bounded clause vivification: for each problem clause (l1 .. ln), assume
  // ~l1, ~l2, ... in turn under a throwaway decision level. A conflict
  // proves the assumed prefix is already a valid clause; a literal found
  // true proves the prefix plus that literal is; a literal found false is
  // redundant (resolution on it against the implied prefix clause). The
  // cursor persists across calls so successive inprocessing rounds walk
  // different clauses.
  const std::uint64_t prop_budget = 20000;
  const std::uint64_t start_props = stats_.propagations;
  std::size_t examined = 0;
  std::vector<Lit> keep;
  while (ok_ && examined < clauses_.size() &&
         stats_.propagations - start_props < prop_budget) {
    if (vivify_cursor_ >= clauses_.size()) vivify_cursor_ = 0;
    const CRef c = clauses_[vivify_cursor_++];
    ++examined;
    if (arena_.dead(c) || arena_.size(c) < 3) continue;
    const std::uint32_t n = arena_.size(c);
    bool satisfied = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (lit_value(arena_.lit(c, i)) == LBool::True) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) {
      remove_clause_ref(c);
      continue;
    }
    detach(c);  // c must not propagate against itself below
    keep.clear();
    bool shortcut = false;  // conflict or satisfied-literal exit
    new_decision_level();
    for (std::uint32_t i = 0; i < n; ++i) {
      const Lit l = arena_.lit(c, i);
      const LBool v = lit_value(l);
      if (v == LBool::True) {
        // ~keep implies l: (keep, l) is a valid replacement.
        keep.push_back(l);
        shortcut = true;
        break;
      }
      if (v == LBool::False) continue;  // ~keep implies ~l: drop l
      keep.push_back(l);
      enqueue(~l, k_cref_undef);
      if (propagate() != k_cref_undef) {
        // ~keep is contradictory: keep alone is a valid replacement.
        shortcut = true;
        break;
      }
    }
    backtrack(0);
    (void)shortcut;
    if (keep.size() >= n) {
      attach(c);  // nothing gained
      continue;
    }
    stats_.vivified_lits += n - static_cast<std::uint32_t>(keep.size());
    if (keep.empty()) {
      arena_.free_clause(c);
      ok_ = false;
      return;
    }
    for (std::uint32_t i = 0; i < keep.size(); ++i) {
      arena_.set_lit(c, i, keep[static_cast<std::size_t>(i)]);
    }
    arena_.shrink(c, static_cast<std::uint32_t>(keep.size()));
    reattach_simplified(c);
  }
}

// ---- arena GC ---------------------------------------------------------------

void Solver::gc_arena() {
  stats_.arena_gc_bytes += arena_.wasted_bytes();
  ClauseArena to;
  to.reserve_words(arena_.used_words() - arena_.wasted_words());
  // Relocation preserves the order of every watch list and of
  // clauses_/learnts_, so the search trajectory is byte-for-byte unchanged;
  // walking watch lists first lays co-watched clauses adjacently.
  for (auto& ws : bin_watches_) {
    for (BinWatcher& w : ws) w.clause = arena_.relocate(w.clause, to);
  }
  for (auto& ws : watches_) {
    for (Watcher& w : ws) w.clause = arena_.relocate(w.clause, to);
  }
  for (const Lit& l : trail_) {
    CRef& r = reason_[l.var()];
    if (r != k_cref_undef) r = arena_.relocate(r, to);
  }
  for (CRef& c : clauses_) c = arena_.relocate(c, to);
  for (CRef& c : learnts_) c = arena_.relocate(c, to);
  arena_ = std::move(to);
}

// ---- activity heap ---------------------------------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_percolate_up(heap_pos_[v]);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_percolate_down(0);
  }
  return top;
}

void Solver::heap_update(Var v) {
  if (heap_pos_[v] >= 0) {
    heap_percolate_up(heap_pos_[v]);
    heap_percolate_down(heap_pos_[v]);
  }
}

void Solver::heap_percolate_up(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[static_cast<std::size_t>(parent)]] >= activity_[v]) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(parent)];
    heap_pos_[heap_[static_cast<std::size_t>(i)]] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[v] = i;
}

void Solver::heap_percolate_down(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[heap_[static_cast<std::size_t>(child + 1)]] >
            activity_[heap_[static_cast<std::size_t>(child)]]) {
      ++child;
    }
    if (activity_[heap_[static_cast<std::size_t>(child)]] <= activity_[v]) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(child)];
    heap_pos_[heap_[static_cast<std::size_t>(i)]] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[v] = i;
}

}  // namespace cl::sat
