#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sat/exchange.hpp"
#include "util/fnv.hpp"

namespace cl::sat {

Solver::Solver() {
  level_stamp_.push_back(0);  // slot for decision level 0
}

Solver::~Solver() {
  for (Clause* c : clauses_) delete c;
  for (Clause* c : learnts_) delete c;
}

std::uint64_t Solver::next_rand() {
  // xorshift64*: deterministic per Config::seed, cheap enough for the
  // decision loop.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return rng_state_ * 0x2545F4914F6CDD1DULL;
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(activity_.size());
  activity_.push_back(0.0);
  assigns_.push_back(LBool::Undef);
  bool initial_phase = config_.default_phase;
  if (config_.random_initial_phase) initial_phase = (next_rand() & 1) != 0;
  phase_.push_back(initial_phase);
  best_phase_.push_back(initial_phase);
  reason_.push_back(nullptr);
  level_.push_back(0);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  level_stamp_.push_back(0);
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

void Solver::set_config(const Config& config) {
  if (decision_level() != 0) {
    throw std::logic_error("set_config: only legal at decision level 0");
  }
  config_ = config;
  max_learnts_ = config.max_learnts;
  rng_state_ = config.seed * 0x9E3779B97F4A7C15ULL + 0x853c49e6748fea9bULL;
  if (rng_state_ == 0) rng_state_ = 0x853c49e6748fea9bULL;
  for (Var v = 0; v < num_vars(); ++v) {
    if (assigns_[v] != LBool::Undef) continue;  // keep root-implied values
    bool initial_phase = config_.default_phase;
    if (config_.random_initial_phase) initial_phase = (next_rand() & 1) != 0;
    phase_[v] = initial_phase;
  }
  best_phase_ = phase_;
  best_trail_size_ = 0;
}

void Solver::copy_problem_into(Solver& dst) const {
  if (decision_level() != 0) {
    throw std::logic_error("copy_problem_into: only legal at decision level 0");
  }
  if (dst.num_vars() > num_vars()) {
    throw std::invalid_argument("copy_problem_into: destination has extra variables");
  }
  while (dst.num_vars() < num_vars()) dst.new_var();
  if (!ok_) {
    dst.ok_ = false;
    return;
  }
  for (const Lit& l : trail_) dst.add_clause({l});  // root-level units
  for (const Clause* c : clauses_) dst.add_clause(c->lits);
  // Learnts are implied by the problem clauses, so replaying them seeds the
  // clone with everything this solver has derived so far.
  for (const Clause* c : learnts_) dst.add_clause(c->lits);
}

LBool Solver::lit_value(Lit l) const {
  const LBool v = assigns_[l.var()];
  if (v == LBool::Undef) return LBool::Undef;
  const bool b = (v == LBool::True) != l.negated();
  return b ? LBool::True : LBool::False;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  if (decision_level() != 0) {
    throw std::logic_error("add_clause: only legal at decision level 0");
  }
  // Simplify: sort, drop duplicates, detect tautology, drop false literals,
  // detect satisfied clauses.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = Lit::from_code(-2);
  for (Lit l : lits) {
    if (l.var() < 0 || l.var() >= num_vars()) {
      throw std::invalid_argument("add_clause: unknown variable");
    }
    if (l == prev) continue;
    if (prev.code() >= 0 && l == ~prev) return true;  // tautology
    const LBool v = lit_value(l);
    if (v == LBool::True) return true;  // already satisfied at level 0
    if (v == LBool::False) { prev = l; continue; }
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], nullptr);
    if (propagate() != nullptr) ok_ = false;
    return ok_;
  }
  Clause* c = new Clause{std::move(out), 0.0, 0, false};
  clauses_.push_back(c);
  attach(c);
  return true;
}

void Solver::attach(Clause* c) {
  if (c->lits.size() == 2) {
    bin_watches_[(~c->lits[0]).code()].push_back({c->lits[1], c});
    bin_watches_[(~c->lits[1]).code()].push_back({c->lits[0], c});
    return;
  }
  watches_[(~c->lits[0]).code()].push_back({c, c->lits[1]});
  watches_[(~c->lits[1]).code()].push_back({c, c->lits[0]});
}

void Solver::detach(Clause* c) {
  if (c->lits.size() == 2) {
    for (int i = 0; i < 2; ++i) {
      auto& ws = bin_watches_[(~c->lits[i]).code()];
      for (std::size_t j = 0; j < ws.size(); ++j) {
        if (ws[j].clause == c) {
          ws[j] = ws.back();
          ws.pop_back();
          break;
        }
      }
    }
    return;
  }
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[(~c->lits[i]).code()];
    for (std::size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].clause == c) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::enqueue(Lit l, Clause* reason) {
  assigns_[l.var()] = l.negated() ? LBool::False : LBool::True;
  phase_[l.var()] = !l.negated();
  reason_[l.var()] = reason;
  level_[l.var()] = decision_level();
  trail_.push_back(l);
}

Solver::Clause* Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    // Binary watchers first: the implied literal is read straight from the
    // watcher, so the common two-literal case never touches clause memory.
    for (const BinWatcher& bw : bin_watches_[p.code()]) {
      const LBool v = lit_value(bw.other);
      if (v == LBool::True) continue;
      Clause* c = bw.clause;
      if (v == LBool::False) {
        propagate_head_ = trail_.size();
        return c;
      }
      // analyze() expects the implied literal at position 0 of its reason.
      if (c->lits[0] != bw.other) std::swap(c->lits[0], c->lits[1]);
      enqueue(bw.other, c);
    }
    auto& ws = watches_[p.code()];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (lit_value(w.blocker) == LBool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause* c = w.clause;
      // Normalize: ensure the false literal ~p is at position 1.
      const Lit not_p = ~p;
      if (c->lits[0] == not_p) std::swap(c->lits[0], c->lits[1]);
      // If first literal is true, keep watching.
      if (lit_value(c->lits[0]) == LBool::True) {
        ws[j++] = {c, c->lits[0]};
        ++i;
        continue;
      }
      // Search a new literal to watch.
      bool found = false;
      for (std::size_t k = 2; k < c->lits.size(); ++k) {
        if (lit_value(c->lits[k]) != LBool::False) {
          std::swap(c->lits[1], c->lits[k]);
          watches_[(~c->lits[1]).code()].push_back({c, c->lits[0]});
          found = true;
          break;
        }
      }
      if (found) {
        ++i;  // this watcher is dropped (moved to the other list)
        continue;
      }
      // Unit or conflicting.
      if (lit_value(c->lits[0]) == LBool::False) {
        // Conflict: restore remaining watchers and report.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        propagate_head_ = trail_.size();
        return c;
      }
      enqueue(c->lits[0], c);
      ws[j++] = {c, c->lits[0]};
      ++i;
    }
    ws.resize(j);
  }
  return nullptr;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) heap_percolate_up(heap_pos_[v]);
}

void Solver::bump_clause(Clause* c) {
  c->activity += clause_inc_;
  if (c->activity > 1e20) {
    for (Clause* l : learnts_) l->activity *= 1e-20;
    clause_inc_ *= 1e-20;
  }
}

int Solver::clause_lbd(const std::vector<Lit>& lits) {
  // Exact glue: number of distinct decision levels > 0 among the literals,
  // via a stamped per-level scratch array (no hashing collisions). Dummy
  // decision levels (assumptions already satisfied when placed, e.g.
  // duplicated assumption literals) can push decision levels past
  // num_vars, so the scratch array grows on demand.
  if (level_stamp_.size() <= static_cast<std::size_t>(decision_level())) {
    level_stamp_.resize(static_cast<std::size_t>(decision_level()) + 1, 0);
  }
  ++lbd_stamp_;
  int lbd = 0;
  for (const Lit& l : lits) {
    const int lev = level_[l.var()];
    if (lev <= 0) continue;
    if (level_stamp_[static_cast<std::size_t>(lev)] != lbd_stamp_) {
      level_stamp_[static_cast<std::size_t>(lev)] = lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::analyze(Clause* conflict, std::vector<Lit>& learnt,
                     int& backtrack_level) {
  learnt.clear();
  learnt.push_back(Lit::from_code(-2));  // slot for the asserting literal
  int counter = 0;
  Lit p = Lit::from_code(-2);
  std::size_t trail_index = trail_.size();
  Clause* reason = conflict;

  do {
    bump_clause(reason);
    // Update-on-use: a learnt clause re-derived during analysis may now sit
    // at a lower glue level; keeping the minimum protects it from reduction.
    if (reason->learnt && reason->lits.size() > 2) {
      const int glue = clause_lbd(reason->lits);
      if (glue < reason->lbd) reason->lbd = glue;
    }
    // Start at 1 when `reason` is the reason of p (lits[0] == p).
    const std::size_t start = (p.code() >= 0) ? 1 : 0;
    for (std::size_t k = start; k < reason->lits.size(); ++k) {
      const Lit q = reason->lits[k];
      if (!seen_[q.var()] && level_[q.var()] > 0) {
        seen_[q.var()] = true;
        bump_var(q.var());
        if (level_[q.var()] >= decision_level()) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Select next literal on the trail to resolve on.
    while (!seen_[trail_[trail_index - 1].var()]) --trail_index;
    --trail_index;
    p = trail_[trail_index];
    seen_[p.var()] = false;
    reason = reason_[p.var()];
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Mark remaining literals for minimization bookkeeping.
  analyze_clear_ = learnt;
  for (const Lit& l : learnt) {
    if (l.code() >= 0) seen_[l.var()] = true;
  }
  // Clause minimization: drop literals implied by the rest of the clause.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract_levels |= 1u << (level_[learnt[i].var()] & 31);
  }
  const std::size_t before_minimize = learnt.size();
  std::size_t out = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].var()] == nullptr ||
        !literal_redundant(learnt[i], abstract_levels)) {
      learnt[out++] = learnt[i];
    }
  }
  learnt.resize(out);
  stats_.minimized_literals += before_minimize - out;

  for (const Lit& l : analyze_clear_) {
    if (l.code() >= 0) seen_[l.var()] = false;
  }
  analyze_clear_.clear();

  // Compute backtrack level: max level among learnt[1..].
  if (learnt.size() == 1) {
    backtrack_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[learnt[1].var()];
  }
}

bool Solver::literal_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t top = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit cur = analyze_stack_.back();
    analyze_stack_.pop_back();
    const Clause* c = reason_[cur.var()];
    if (c == nullptr) {
      // Hit a decision: not redundant; undo marks made during this check.
      for (std::size_t i = top; i < analyze_clear_.size(); ++i) {
        seen_[analyze_clear_[i].var()] = false;
      }
      analyze_clear_.resize(top);
      return false;
    }
    for (std::size_t k = 1; k < c->lits.size(); ++k) {
      const Lit q = c->lits[k];
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      if (reason_[q.var()] == nullptr ||
          ((1u << (level_[q.var()] & 31)) & abstract_levels) == 0) {
        for (std::size_t i = top; i < analyze_clear_.size(); ++i) {
          seen_[analyze_clear_[i].var()] = false;
        }
        analyze_clear_.resize(top);
        return false;
      }
      seen_[q.var()] = true;
      analyze_stack_.push_back(q);
      analyze_clear_.push_back(q);
    }
  }
  return true;
}

void Solver::backtrack(int target_level) {
  if (decision_level() <= target_level) return;
  const int limit = level_limits_[target_level];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= limit; --i) {
    const Var v = trail_[static_cast<std::size_t>(i)].var();
    assigns_[v] = LBool::Undef;
    reason_[v] = nullptr;
    if (heap_pos_[v] < 0) heap_insert(v);
  }
  trail_.resize(static_cast<std::size_t>(limit));
  level_limits_.resize(static_cast<std::size_t>(target_level));
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch() {
  if (config_.random_decision_freq > 0.0 && !heap_.empty()) {
    // Occasional random decision (portfolio diversification). The variable
    // stays in the heap; the VSIDS pop below skips assigned entries anyway.
    const double roll = static_cast<double>(next_rand() >> 11) * 0x1.0p-53;
    if (roll < config_.random_decision_freq) {
      const Var v = heap_[static_cast<std::size_t>(next_rand() % heap_.size())];
      if (assigns_[v] == LBool::Undef) {
        ++stats_.decisions;
        ++stats_.random_decisions;
        return Lit(v, !phase_[v]);
      }
    }
  }
  while (!heap_empty()) {
    const Var v = heap_pop();
    if (assigns_[v] == LBool::Undef) {
      ++stats_.decisions;
      return Lit(v, !phase_[v]);
    }
  }
  return Lit::from_code(-2);
}

void Solver::reduce_db() {
  // Keep clauses with low LBD or high activity; delete the bottom half.
  // Glue clauses (LBD <= 2) and binaries are never deleted.
  std::sort(learnts_.begin(), learnts_.end(), [](Clause* a, Clause* b) {
    if (a->lbd != b->lbd) return a->lbd > b->lbd;
    return a->activity < b->activity;
  });
  const std::size_t target = learnts_.size() / 2;
  std::vector<Clause*> kept;
  kept.reserve(learnts_.size() - target);
  std::size_t removed = 0;
  for (Clause* c : learnts_) {
    bool locked = false;
    // A clause is locked if it is the reason of a current assignment.
    const Lit first = c->lits[0];
    if (lit_value(first) == LBool::True && reason_[first.var()] == c) {
      locked = true;
    }
    const bool glue = c->lbd <= 2 || c->lits.size() <= 2;
    if (removed < target && !locked && !glue) {
      detach(c);
      delete c;
      ++removed;
      ++stats_.learnts_deleted;
    } else {
      // Still inside the deletion quota but spared: record when the glue
      // policy (not a lock) is what saved the clause.
      if (removed < target && !locked && glue) ++stats_.glue_protected;
      kept.push_back(c);
    }
  }
  learnts_ = std::move(kept);
}

void Solver::analyze_final(Lit p) {
  conflict_assumptions_.clear();
  conflict_assumptions_.push_back(p);
  if (decision_level() == 0) return;
  seen_[p.var()] = true;
  for (int i = static_cast<int>(trail_.size()) - 1;
       i >= level_limits_[0]; --i) {
    const Var v = trail_[static_cast<std::size_t>(i)].var();
    if (!seen_[v]) continue;
    if (reason_[v] == nullptr) {
      if (level_[v] > 0 && trail_[static_cast<std::size_t>(i)] != p) {
        conflict_assumptions_.push_back(trail_[static_cast<std::size_t>(i)]);
      }
    } else {
      for (std::size_t k = 1; k < reason_[v]->lits.size(); ++k) {
        const Var u = reason_[v]->lits[k].var();
        if (level_[u] > 0) seen_[u] = true;
      }
    }
    seen_[v] = false;
  }
  seen_[p.var()] = false;
}

void Solver::set_exchange(ClauseExchange* exchange, std::size_t source) {
  exchange_ = exchange;
  exchange_source_ = source;
  exchange_cursor_ = 0;
  imported_hashes_.clear();
}

namespace {

/// Order-independent clause identity for reader-side dedup: FNV-1a over the
/// sorted literal codes.
std::uint64_t clause_hash(const Lit* lits, std::size_t n) {
  std::int32_t codes[ClauseExchange::k_max_lits];
  for (std::size_t i = 0; i < n; ++i) codes[i] = lits[i].code();
  std::sort(codes, codes + n);
  std::uint64_t h = util::k_fnv_offset;
  for (std::size_t i = 0; i < n; ++i) {
    util::fnv1a_mix(h, static_cast<std::uint32_t>(codes[i]));
  }
  return h;
}

}  // namespace

void Solver::export_learnt(const std::vector<Lit>& learnt, int lbd) {
  if (learnt.size() > ClauseExchange::k_max_lits) return;
  if (learnt.size() > 1 && lbd > 2) return;  // units and glue only
  if (exchange_->publish(exchange_source_, learnt.data(), learnt.size())) {
    ++stats_.shared_exported;
  }
}

void Solver::import_shared() {
  // Caller backtracked to level 0 (import happens at restart boundaries), so
  // add_clause is legal; imported clauses are implied by the shared problem
  // database, so a root conflict here is a genuine Unsat verdict (ok_ flips
  // and solve() reports it).
  ClauseExchange::Cursor cursor{exchange_cursor_};
  exchange_->collect(cursor, exchange_source_, [&](const Lit* lits,
                                                   std::size_t n) {
    if (!ok_) return;
    const std::uint64_t h = clause_hash(lits, n);
    const auto it =
        std::lower_bound(imported_hashes_.begin(), imported_hashes_.end(), h);
    if (it != imported_hashes_.end() && *it == h) return;  // already adopted
    imported_hashes_.insert(it, h);
    add_clause(std::vector<Lit>(lits, lits + n));
    ++stats_.shared_imported;
  });
  exchange_cursor_ = cursor.next;
}

double Solver::luby(double y, int i) {
  int size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  if (!ok_) return Result::Unsat;
  conflict_assumptions_.clear();
  backtrack(0);
  if (propagate() != nullptr) {
    ok_ = false;
    return Result::Unsat;
  }
  // Honour an already-expired wall deadline (or a fired interrupt) before
  // any search: conflicts are the only other place these are read, and an
  // easy instance may never produce one.
  if (time_budget_s_ >= 0 && std::chrono::steady_clock::now() > deadline_) {
    return Result::Unknown;
  }
  if (interrupted()) return Result::Unknown;

  int restart_count = 0;
  std::int64_t conflicts_until_restart = static_cast<std::int64_t>(
      luby(2.0, restart_count) * config_.restart_unit);
  best_trail_size_ = 0;  // best-phase tracking is per solve call

  std::vector<Lit> learnt;
  for (;;) {
    Clause* conflict = propagate();
    if (conflict != nullptr) {
      ++stats_.conflicts;
      // Best-phase caching: snapshot the polarities of the deepest trail
      // seen this call; restarts can re-target it.
      if (trail_.size() > best_trail_size_) {
        best_trail_size_ = trail_.size();
        best_phase_ = phase_;
      }
      if (decision_level() == 0) {
        ok_ = false;
        return Result::Unsat;
      }
      // Conflict below/at the assumption prefix: find which assumptions fail.
      if (static_cast<std::size_t>(decision_level()) <= assumptions.size()) {
        // The conflict depends on assumptions only through decisions; collect
        // them by resolving the conflict fully.
        conflict_assumptions_.clear();
        for (const Lit& l : conflict->lits) {
          if (level_[l.var()] > 0) seen_[l.var()] = true;
        }
        for (int i = static_cast<int>(trail_.size()) - 1;
             i >= level_limits_[0]; --i) {
          const Var v = trail_[static_cast<std::size_t>(i)].var();
          if (!seen_[v]) continue;
          if (reason_[v] == nullptr) {
            conflict_assumptions_.push_back(trail_[static_cast<std::size_t>(i)]);
          } else {
            for (std::size_t k = 1; k < reason_[v]->lits.size(); ++k) {
              const Var u = reason_[v]->lits[k].var();
              if (level_[u] > 0) seen_[u] = true;
            }
          }
          seen_[v] = false;
        }
        backtrack(0);
        return Result::Unsat;
      }
      int back_level = 0;
      analyze(conflict, learnt, back_level);
      // Exact LBD of the freshly learnt clause, while levels are live.
      const int learnt_lbd = clause_lbd(learnt);
      if (exchange_ != nullptr) export_learnt(learnt, learnt_lbd);
      if (learnt.size() == 1) {
        // A unit learnt clause is implied by the clause database alone (not
        // the assumptions), so assert it at the root; the decision loop
        // re-places the assumptions afterwards.
        backtrack(0);
        enqueue(learnt[0], nullptr);
      } else {
        // Never backtrack into the assumption prefix: clamp to the prefix
        // boundary. The learnt clause still asserts there — every literal
        // but learnt[0] is false at a level <= back_level <= floor_level.
        // (decision_level() > assumptions.size() here; the prefix-conflict
        // case above already returned.)
        const int floor_level = static_cast<int>(assumptions.size());
        backtrack(std::max(back_level, floor_level));
        Clause* c = new Clause{learnt, clause_inc_, learnt_lbd, true};
        learnts_.push_back(c);
        ++stats_.learned;
        attach(c);
        enqueue(learnt[0], c);
      }
      decay_var_activity();
      clause_inc_ /= 0.999;

      if (conflict_budget_ >= 0 &&
          stats_.conflicts >= static_cast<std::uint64_t>(conflict_budget_)) {
        backtrack(0);
        return Result::Unknown;
      }
      if (interrupted()) {
        backtrack(0);
        return Result::Unknown;
      }
      if (time_budget_s_ >= 0 && --deadline_check_countdown_ <= 0) {
        deadline_check_countdown_ = 256;
        if (std::chrono::steady_clock::now() > deadline_) {
          backtrack(0);
          return Result::Unknown;
        }
      }
      if (--conflicts_until_restart <= 0) {
        ++restart_count;
        ++stats_.restarts;
        conflicts_until_restart = static_cast<std::int64_t>(
            luby(2.0, restart_count) * config_.restart_unit);
        if (config_.use_best_phase && best_trail_size_ > 0) {
          phase_ = best_phase_;
        }
        if (exchange_ != nullptr) {
          // Restart boundary: adopt what the other workers published. Import
          // needs level 0 (full restart instead of the assumption-prefix
          // one); the decision loop re-places the assumptions afterwards.
          backtrack(0);
          import_shared();
          if (!ok_) return Result::Unsat;
        } else {
          backtrack(static_cast<int>(assumptions.size()) <= decision_level()
                        ? static_cast<int>(assumptions.size())
                        : 0);
        }
      }
      if (learnts_.size() > max_learnts_) {
        reduce_db();
        max_learnts_ = max_learnts_ + max_learnts_ / 10;
      }
    } else {
      if (propagation_budget_ >= 0 &&
          stats_.propagations >= static_cast<std::uint64_t>(propagation_budget_)) {
        backtrack(0);
        return Result::Unknown;
      }
      // Place assumptions as the first decisions.
      if (static_cast<std::size_t>(decision_level()) < assumptions.size()) {
        const Lit a = assumptions[static_cast<std::size_t>(decision_level())];
        const LBool v = lit_value(a);
        if (v == LBool::True) {
          new_decision_level();  // already satisfied; dummy level keeps indexing
          continue;
        }
        if (v == LBool::False) {
          analyze_final(~a);
          backtrack(0);
          return Result::Unsat;
        }
        new_decision_level();
        enqueue(a, nullptr);
        continue;
      }
      const Lit next = pick_branch();
      if (next.code() < 0) {
        // All variables assigned: model found. Copy it out and restore the
        // solver to level 0 so clauses can be added incrementally.
        model_ = assigns_;
        backtrack(0);
        return Result::Sat;
      }
      new_decision_level();
      enqueue(next, nullptr);
    }
  }
}

bool Solver::model_value(Var v) const {
  if (v < 0 || v >= static_cast<Var>(model_.size())) {
    throw std::out_of_range("model_value: no model for variable");
  }
  return model_[v] == LBool::True;
}

bool Solver::model_value(Lit l) const {
  return model_value(l.var()) != l.negated();
}

void Solver::set_conflict_budget(std::int64_t max_conflicts) {
  conflict_budget_ =
      max_conflicts < 0 ? -1
                        : static_cast<std::int64_t>(stats_.conflicts) + max_conflicts;
}

void Solver::set_propagation_budget(std::int64_t max_propagations) {
  propagation_budget_ =
      max_propagations < 0
          ? -1
          : static_cast<std::int64_t>(stats_.propagations) + max_propagations;
}

void Solver::set_time_budget(double seconds) {
  time_budget_s_ = seconds;
  // Force a clock check at the next conflict: a reused solver re-armed with
  // a shorter deadline must not coast on a countdown left over from the
  // previous budget (up to 256 conflicts of over-run otherwise).
  deadline_check_countdown_ = 0;
  if (seconds >= 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
  }
}

// ---- activity heap ---------------------------------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_percolate_up(heap_pos_[v]);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_percolate_down(0);
  }
  return top;
}

void Solver::heap_update(Var v) {
  if (heap_pos_[v] >= 0) {
    heap_percolate_up(heap_pos_[v]);
    heap_percolate_down(heap_pos_[v]);
  }
}

void Solver::heap_percolate_up(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[static_cast<std::size_t>(parent)]] >= activity_[v]) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(parent)];
    heap_pos_[heap_[static_cast<std::size_t>(i)]] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[v] = i;
}

void Solver::heap_percolate_down(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[heap_[static_cast<std::size_t>(child + 1)]] >
            activity_[heap_[static_cast<std::size_t>(child)]]) {
      ++child;
    }
    if (activity_[heap_[static_cast<std::size_t>(child)]] <= activity_[v]) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(child)];
    heap_pos_[heap_[static_cast<std::size_t>(i)]] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[v] = i;
}

}  // namespace cl::sat
