#include "logic/truth_table.hpp"

#include <bit>
#include <stdexcept>

namespace cl::logic {

namespace {
std::size_t words_for(int num_vars) {
  const std::uint64_t minterms = 1ULL << num_vars;
  return static_cast<std::size_t>((minterms + 63) / 64);
}
}  // namespace

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0 || num_vars > 20) {
    throw std::invalid_argument("TruthTable: num_vars out of [0,20]");
  }
  words_.assign(words_for(num_vars), 0);
}

TruthTable TruthTable::from_function(
    int num_vars, const std::function<bool(std::uint64_t)>& f) {
  TruthTable t(num_vars);
  for (std::uint64_t m = 0; m < t.num_minterms(); ++m) {
    if (f(m)) t.set(m, true);
  }
  return t;
}

bool TruthTable::get(std::uint64_t minterm) const {
  if (minterm >= num_minterms()) throw std::out_of_range("TruthTable::get");
  return (words_[minterm >> 6] >> (minterm & 63)) & 1ULL;
}

void TruthTable::set(std::uint64_t minterm, bool value) {
  if (minterm >= num_minterms()) throw std::out_of_range("TruthTable::set");
  const std::uint64_t bit = 1ULL << (minterm & 63);
  if (value) {
    words_[minterm >> 6] |= bit;
  } else {
    words_[minterm >> 6] &= ~bit;
  }
}

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t n = 0;
  const std::uint64_t total = num_minterms();
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    if (num_vars_ < 6 && w == 0) word &= (1ULL << total) - 1;
    n += static_cast<std::uint64_t>(std::popcount(word));
  }
  return n;
}

bool TruthTable::is_const_zero() const { return count_ones() == 0; }
bool TruthTable::is_const_one() const { return count_ones() == num_minterms(); }

TruthTable TruthTable::operator~() const {
  TruthTable t(num_vars_);
  for (std::size_t w = 0; w < words_.size(); ++w) t.words_[w] = ~words_[w];
  return t;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  if (num_vars_ != o.num_vars_) throw std::invalid_argument("var mismatch");
  TruthTable t(num_vars_);
  for (std::size_t w = 0; w < words_.size(); ++w) t.words_[w] = words_[w] & o.words_[w];
  return t;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  if (num_vars_ != o.num_vars_) throw std::invalid_argument("var mismatch");
  TruthTable t(num_vars_);
  for (std::size_t w = 0; w < words_.size(); ++w) t.words_[w] = words_[w] | o.words_[w];
  return t;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  if (num_vars_ != o.num_vars_) throw std::invalid_argument("var mismatch");
  TruthTable t(num_vars_);
  for (std::size_t w = 0; w < words_.size(); ++w) t.words_[w] = words_[w] ^ o.words_[w];
  return t;
}

bool TruthTable::operator==(const TruthTable& o) const {
  if (num_vars_ != o.num_vars_) return false;
  const std::uint64_t total = num_minterms();
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t a = words_[w];
    std::uint64_t b = o.words_[w];
    if (num_vars_ < 6 && w == 0) {
      const std::uint64_t mask = (1ULL << total) - 1;
      a &= mask;
      b &= mask;
    }
    if (a != b) return false;
  }
  return true;
}

TruthTable TruthTable::variable(int num_vars, int var) {
  if (var < 0 || var >= num_vars) throw std::invalid_argument("variable index");
  return from_function(num_vars,
                       [var](std::uint64_t m) { return (m >> var) & 1ULL; });
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  if (var < 0 || var >= num_vars_) throw std::invalid_argument("cofactor index");
  TruthTable t(num_vars_);
  const std::uint64_t vbit = 1ULL << var;
  for (std::uint64_t m = 0; m < num_minterms(); ++m) {
    const std::uint64_t src = value ? (m | vbit) : (m & ~vbit);
    t.set(m, get(src));
  }
  return t;
}

bool TruthTable::is_independent_of(int var) const {
  return cofactor(var, false) == cofactor(var, true);
}

bool TruthTable::is_positive_unate(int var) const {
  // f(x=0) <= f(x=1) pointwise: f0 & ~f1 empty.
  const TruthTable f0 = cofactor(var, false);
  const TruthTable f1 = cofactor(var, true);
  return (f0 & ~f1).is_const_zero();
}

bool TruthTable::is_negative_unate(int var) const {
  const TruthTable f0 = cofactor(var, false);
  const TruthTable f1 = cofactor(var, true);
  return (f1 & ~f0).is_const_zero();
}

std::vector<std::uint64_t> TruthTable::onset() const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t m = 0; m < num_minterms(); ++m) {
    if (get(m)) out.push_back(m);
  }
  return out;
}

}  // namespace cl::logic
