// Dense truth tables over up to 20 variables, packed 64 minterms per word.
// Used by the two-level minimizer, FALL's functional analysis, and tests that
// compare netlists against reference functions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace cl::logic {

/// Truth table of a single-output boolean function of `num_vars` inputs.
/// Minterm m (variable i = bit i of m) is stored at word m/64, bit m%64.
class TruthTable {
 public:
  /// All-zero function of n variables. n must be in [0, 20].
  explicit TruthTable(int num_vars);

  /// Build from an evaluator called once per minterm.
  static TruthTable from_function(int num_vars,
                                  const std::function<bool(std::uint64_t)>& f);

  int num_vars() const { return num_vars_; }
  std::uint64_t num_minterms() const { return 1ULL << num_vars_; }

  bool get(std::uint64_t minterm) const;
  void set(std::uint64_t minterm, bool value);

  /// Number of minterms where the function is 1.
  std::uint64_t count_ones() const;

  bool is_const_zero() const;
  bool is_const_one() const;

  /// Pointwise operators.
  TruthTable operator~() const;
  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator^(const TruthTable& o) const;
  bool operator==(const TruthTable& o) const;

  /// Projection of input variable `var` (truth table of xi itself).
  static TruthTable variable(int num_vars, int var);

  /// Shannon cofactor with variable `var` fixed to `value` (result keeps the
  /// same variable count; the fixed variable becomes irrelevant).
  TruthTable cofactor(int var, bool value) const;

  /// True if the function does not depend on `var`.
  bool is_independent_of(int var) const;

  /// True if the function is positive/negative unate in `var`.
  bool is_positive_unate(int var) const;
  bool is_negative_unate(int var) const;

  /// All minterms where the function evaluates to 1.
  std::vector<std::uint64_t> onset() const;

 private:
  int num_vars_;
  std::vector<std::uint64_t> words_;
};

}  // namespace cl::logic
