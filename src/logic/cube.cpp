#include "logic/cube.hpp"

#include <bit>
#include <stdexcept>

namespace cl::logic {

Cube Cube::minterm(std::uint32_t m, int num_vars) {
  if (num_vars < 0 || num_vars > 32) throw std::invalid_argument("num_vars");
  Cube c;
  c.mask = (num_vars == 32) ? 0xffffffffu : ((1u << num_vars) - 1);
  c.value = m & c.mask;
  return c;
}

Cube Cube::parse(const std::string& text) {
  if (text.size() > 32) throw std::invalid_argument("cube too wide");
  Cube c;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (ch == '1') {
      c.mask |= 1u << i;
      c.value |= 1u << i;
    } else if (ch == '0') {
      c.mask |= 1u << i;
    } else if (ch == '-' || ch == 'x' || ch == 'X') {
      // don't care
    } else {
      throw std::invalid_argument("bad cube character");
    }
  }
  return c;
}

std::string Cube::to_string(int num_vars) const {
  std::string s(static_cast<std::size_t>(num_vars), '-');
  for (int i = 0; i < num_vars; ++i) {
    if ((mask >> i) & 1u) s[static_cast<std::size_t>(i)] = ((value >> i) & 1u) ? '1' : '0';
  }
  return s;
}

int Cube::literal_count() const { return std::popcount(mask); }

bool Cube::contains_minterm(std::uint32_t m) const {
  return (m & mask) == (value & mask);
}

bool Cube::covers(const Cube& other) const {
  // Every literal of this cube must be a literal of `other` with the same
  // polarity (this is less constrained => covers more minterms).
  if ((mask & other.mask) != mask) return false;
  return (value & mask) == (other.value & mask);
}

std::optional<Cube> Cube::combine(const Cube& other) const {
  if (mask != other.mask) return std::nullopt;
  const std::uint32_t diff = (value ^ other.value) & mask;
  if (std::popcount(diff) != 1) return std::nullopt;
  Cube merged;
  merged.mask = mask & ~diff;
  merged.value = value & merged.mask;
  return merged;
}

bool cover_eval(const Cover& cover, std::uint32_t minterm) {
  for (const Cube& c : cover) {
    if (c.contains_minterm(minterm)) return true;
  }
  return false;
}

int cover_literals(const Cover& cover) {
  int n = 0;
  for (const Cube& c : cover) n += c.literal_count();
  return n;
}

}  // namespace cl::logic
