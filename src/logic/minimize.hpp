// Two-level logic minimization: Quine–McCluskey prime generation with an
// essential-prime + greedy set-cover selection. Exact prime generation,
// near-minimal cover — the classic textbook pipeline, adequate for the
// next-state functions produced by FSM synthesis.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/cube.hpp"
#include "logic/truth_table.hpp"

namespace cl::logic {

/// All prime implicants of the function whose onset is `onset` and don't-care
/// set is `dc` (minterm lists over `num_vars` variables, num_vars <= 20; the
/// cube representation caps the practical range at 32).
std::vector<Cube> prime_implicants(const std::vector<std::uint64_t>& onset,
                                   const std::vector<std::uint64_t>& dc,
                                   int num_vars);

/// Minimized SOP cover of the onset using don't-cares. The result covers
/// every onset minterm, covers no offset minterm, and consists of prime
/// implicants only.
Cover minimize(const std::vector<std::uint64_t>& onset,
               const std::vector<std::uint64_t>& dc, int num_vars);

/// Convenience: minimize a truth table (no don't-cares).
Cover minimize(const TruthTable& tt);

/// Verify `cover` == the function given by (onset, dc): covers all of onset,
/// nothing of the offset; don't-cares are free. Used in tests/assertions.
bool cover_equals(const Cover& cover, const std::vector<std::uint64_t>& onset,
                  const std::vector<std::uint64_t>& dc, int num_vars);

}  // namespace cl::logic
