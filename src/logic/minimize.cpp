#include "logic/minimize.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <stdexcept>

namespace cl::logic {

std::vector<Cube> prime_implicants(const std::vector<std::uint64_t>& onset,
                                   const std::vector<std::uint64_t>& dc,
                                   int num_vars) {
  if (num_vars < 0 || num_vars > 20) {
    throw std::invalid_argument("prime_implicants: num_vars out of range");
  }
  // Level 0: all onset + dc minterms as full cubes.
  std::set<std::pair<std::uint32_t, std::uint32_t>> current;  // (mask,value)
  for (std::uint64_t m : onset) {
    const Cube c = Cube::minterm(static_cast<std::uint32_t>(m), num_vars);
    current.insert({c.mask, c.value});
  }
  for (std::uint64_t m : dc) {
    const Cube c = Cube::minterm(static_cast<std::uint32_t>(m), num_vars);
    current.insert({c.mask, c.value});
  }

  std::vector<Cube> primes;
  while (!current.empty()) {
    // Group by mask, then try all pairs within a mask group that differ in
    // exactly one bit. Combining cubes always share the same mask.
    std::set<std::pair<std::uint32_t, std::uint32_t>> next;
    std::map<std::pair<std::uint32_t, std::uint32_t>, bool> combined;
    for (const auto& p : current) combined[p] = false;

    std::map<std::uint32_t, std::vector<std::uint32_t>> by_mask;
    for (const auto& [mask, value] : current) by_mask[mask].push_back(value);

    for (const auto& [mask, values] : by_mask) {
      // Bucket by popcount of value for the classic adjacency scan.
      std::map<int, std::vector<std::uint32_t>> by_ones;
      for (std::uint32_t v : values) by_ones[std::popcount(v)].push_back(v);
      for (const auto& [ones, group] : by_ones) {
        const auto it = by_ones.find(ones + 1);
        if (it == by_ones.end()) continue;
        for (std::uint32_t a : group) {
          for (std::uint32_t b : it->second) {
            const std::uint32_t diff = a ^ b;
            if (std::popcount(diff) != 1) continue;
            const std::uint32_t new_mask = mask & ~diff;
            next.insert({new_mask, a & new_mask});
            combined[{mask, a}] = true;
            combined[{mask, b}] = true;
          }
        }
      }
    }
    for (const auto& [key, was_combined] : combined) {
      if (!was_combined) primes.push_back(Cube{key.first, key.second});
    }
    current = std::move(next);
  }
  // Deduplicate (different merge paths can produce the same cube).
  std::sort(primes.begin(), primes.end(), [](const Cube& a, const Cube& b) {
    return std::tie(a.mask, a.value) < std::tie(b.mask, b.value);
  });
  primes.erase(std::unique(primes.begin(), primes.end()), primes.end());
  return primes;
}

Cover minimize(const std::vector<std::uint64_t>& onset,
               const std::vector<std::uint64_t>& dc, int num_vars) {
  if (onset.empty()) return {};
  std::vector<Cube> primes = prime_implicants(onset, dc, num_vars);

  // Cover table: onset minterms (don't-cares need not be covered).
  std::vector<std::uint64_t> targets = onset;
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());

  Cover chosen;
  std::vector<bool> covered(targets.size(), false);
  std::size_t remaining = targets.size();

  // Essential primes: a minterm covered by exactly one prime forces it.
  std::vector<std::vector<std::size_t>> coverers(targets.size());
  for (std::size_t pi = 0; pi < primes.size(); ++pi) {
    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      if (primes[pi].contains_minterm(static_cast<std::uint32_t>(targets[ti]))) {
        coverers[ti].push_back(pi);
      }
    }
  }
  std::vector<bool> prime_used(primes.size(), false);
  for (std::size_t ti = 0; ti < targets.size(); ++ti) {
    if (coverers[ti].size() == 1 && !prime_used[coverers[ti][0]]) {
      prime_used[coverers[ti][0]] = true;
      chosen.push_back(primes[coverers[ti][0]]);
    }
  }
  for (std::size_t ti = 0; ti < targets.size(); ++ti) {
    if (covered[ti]) continue;
    for (const Cube& c : chosen) {
      if (c.contains_minterm(static_cast<std::uint32_t>(targets[ti]))) {
        covered[ti] = true;
        --remaining;
        break;
      }
    }
  }

  // Greedy: repeatedly take the prime covering the most uncovered minterms,
  // breaking ties toward fewer literals (larger cubes).
  while (remaining > 0) {
    std::size_t best = primes.size();
    std::size_t best_gain = 0;
    for (std::size_t pi = 0; pi < primes.size(); ++pi) {
      if (prime_used[pi]) continue;
      std::size_t gain = 0;
      for (std::size_t ti = 0; ti < targets.size(); ++ti) {
        if (!covered[ti] &&
            primes[pi].contains_minterm(static_cast<std::uint32_t>(targets[ti]))) {
          ++gain;
        }
      }
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best < primes.size() &&
           primes[pi].literal_count() < primes[best].literal_count())) {
        best = pi;
        best_gain = gain;
      }
    }
    if (best == primes.size() || best_gain == 0) {
      throw std::logic_error("minimize: cover selection failed");
    }
    prime_used[best] = true;
    chosen.push_back(primes[best]);
    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      if (!covered[ti] &&
          primes[best].contains_minterm(static_cast<std::uint32_t>(targets[ti]))) {
        covered[ti] = true;
        --remaining;
      }
    }
  }
  return chosen;
}

Cover minimize(const TruthTable& tt) {
  return minimize(tt.onset(), {}, tt.num_vars());
}

bool cover_equals(const Cover& cover, const std::vector<std::uint64_t>& onset,
                  const std::vector<std::uint64_t>& dc, int num_vars) {
  std::set<std::uint64_t> on(onset.begin(), onset.end());
  std::set<std::uint64_t> dcs(dc.begin(), dc.end());
  for (std::uint64_t m = 0; m < (1ULL << num_vars); ++m) {
    const bool val = cover_eval(cover, static_cast<std::uint32_t>(m));
    if (dcs.count(m) != 0) continue;
    if (val != (on.count(m) != 0)) return false;
  }
  return true;
}

}  // namespace cl::logic
