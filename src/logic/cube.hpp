// Cube (product term) and cover (sum of products) algebra over up to 32
// variables. A cube assigns each variable one of {0, 1, -}; it is stored as a
// (care-mask, value) pair: variable i is cared about iff mask bit i is set,
// and then takes value bit i.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cl::logic {

struct Cube {
  std::uint32_t mask = 0;   // 1 = literal present
  std::uint32_t value = 0;  // polarity (only meaningful where mask is 1)

  /// The full-care cube of a single minterm.
  static Cube minterm(std::uint32_t m, int num_vars);

  /// Parse "1-0" style text (variable 0 first). '-'/'x'/'X' are don't-cares.
  static Cube parse(const std::string& text);

  /// Render as "1-0" text over num_vars variables.
  std::string to_string(int num_vars) const;

  /// Number of literals (cared variables).
  int literal_count() const;

  /// True if the cube evaluates to 1 on minterm m.
  bool contains_minterm(std::uint32_t m) const;

  /// True if this cube covers (is a superset of) `other`'s minterms.
  bool covers(const Cube& other) const;

  /// Merge two cubes differing in exactly one cared literal (the QM "combine"
  /// step); nullopt if they are not adjacent.
  std::optional<Cube> combine(const Cube& other) const;

  bool operator==(const Cube& other) const = default;
};

/// Sum-of-products: OR of cubes.
using Cover = std::vector<Cube>;

/// Evaluate a cover on a minterm.
bool cover_eval(const Cover& cover, std::uint32_t minterm);

/// Total literal count (the classic two-level cost function).
int cover_literals(const Cover& cover);

}  // namespace cl::logic
