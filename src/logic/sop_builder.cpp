#include "logic/sop_builder.hpp"

#include <stdexcept>
#include <unordered_map>

namespace cl::logic {

using netlist::Netlist;
using netlist::SignalId;

SignalId build_and_tree(Netlist& nl, std::vector<SignalId> terms,
                        const std::string& name_hint) {
  if (terms.empty()) throw std::invalid_argument("build_and_tree: empty");
  while (terms.size() > 1) {
    std::vector<SignalId> next;
    next.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(nl.add_and(terms[i], terms[i + 1],
                                nl.fresh_name(name_hint + "_a")));
    }
    if (terms.size() % 2 != 0) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms[0];
}

SignalId build_or_tree(Netlist& nl, std::vector<SignalId> terms,
                       const std::string& name_hint) {
  if (terms.empty()) throw std::invalid_argument("build_or_tree: empty");
  while (terms.size() > 1) {
    std::vector<SignalId> next;
    next.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(nl.add_or(terms[i], terms[i + 1],
                               nl.fresh_name(name_hint + "_o")));
    }
    if (terms.size() % 2 != 0) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms[0];
}

SignalId build_sop(Netlist& nl, const std::vector<SignalId>& inputs,
                   const Cover& cover, const std::string& name_hint) {
  if (cover.empty()) {
    return nl.add_const(false, nl.fresh_name(name_hint + "_zero"));
  }
  // Shared inverters, created on demand.
  std::unordered_map<SignalId, SignalId> inverted;
  const auto inv = [&](SignalId s) {
    const auto it = inverted.find(s);
    if (it != inverted.end()) return it->second;
    const SignalId n = nl.add_not(s, nl.fresh_name(name_hint + "_n"));
    inverted.emplace(s, n);
    return n;
  };

  std::vector<SignalId> products;
  products.reserve(cover.size());
  for (const Cube& cube : cover) {
    std::vector<SignalId> literals;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (((cube.mask >> i) & 1u) == 0) continue;
      const bool positive = ((cube.value >> i) & 1u) != 0;
      literals.push_back(positive ? inputs[i] : inv(inputs[i]));
    }
    if (literals.empty()) {
      // Tautological cube: whole function is constant 1.
      return nl.add_const(true, nl.fresh_name(name_hint + "_one"));
    }
    products.push_back(literals.size() == 1
                           ? literals[0]
                           : build_and_tree(nl, literals, name_hint));
  }
  return products.size() == 1 ? products[0]
                              : build_or_tree(nl, products, name_hint);
}

SignalId build_equals_const(Netlist& nl,
                            const std::vector<SignalId>& signals,
                            std::uint64_t constant,
                            const std::string& name_hint) {
  if (signals.empty()) throw std::invalid_argument("build_equals_const: empty");
  std::vector<SignalId> bits;
  bits.reserve(signals.size());
  for (std::size_t i = 0; i < signals.size(); ++i) {
    const bool want_one = (constant >> i) & 1ULL;
    if (want_one) {
      bits.push_back(signals[i]);
    } else {
      bits.push_back(nl.add_not(signals[i], nl.fresh_name(name_hint + "_n")));
    }
  }
  return build_and_tree(nl, std::move(bits), name_hint);
}

}  // namespace cl::logic
