// Materialize two-level covers as gate networks inside a Netlist.
#pragma once

#include <string>
#include <vector>

#include "logic/cube.hpp"
#include "netlist/netlist.hpp"

namespace cl::logic {

/// Build AND-OR logic computing `cover` over the given input signals
/// (variable i of every cube reads `inputs[i]`). Returns the output signal.
/// An empty cover yields constant 0; a single empty cube yields constant 1.
/// Inverters are shared across product terms.
netlist::SignalId build_sop(netlist::Netlist& nl,
                            const std::vector<netlist::SignalId>& inputs,
                            const Cover& cover, const std::string& name_hint);

/// Build a balanced AND (resp. OR) tree over `terms` using 2-input gates.
/// Returns terms[0] when there is a single term; throws on empty input.
netlist::SignalId build_and_tree(netlist::Netlist& nl,
                                 std::vector<netlist::SignalId> terms,
                                 const std::string& name_hint);
netlist::SignalId build_or_tree(netlist::Netlist& nl,
                                std::vector<netlist::SignalId> terms,
                                const std::string& name_hint);

/// Build an equality comparator: output is 1 iff the `signals` word equals
/// `constant` (bit i of constant compared against signals[i]).
netlist::SignalId build_equals_const(netlist::Netlist& nl,
                                     const std::vector<netlist::SignalId>& signals,
                                     std::uint64_t constant,
                                     const std::string& name_hint);

}  // namespace cl::logic
