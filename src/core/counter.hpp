// The time base: a wrap-around modulo-k counter plus per-time-slot indicator
// signals. Both Cute-Lock variants synchronize their keys to this counter
// (paper §III: "c: Number of clock cycles for the counter, determining when
// specific keys must be provided").
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace cl::core {

struct TimeBase {
  std::vector<netlist::SignalId> counter_ffs;  // LSB first
  std::vector<netlist::SignalId> is_time;      // indicator per slot 0..k-1
};

/// Number of counter flip-flops for a modulo-`k` counter.
int counter_bits(std::size_t k);

/// Build a modulo-`k` counter (reset value 0, +1 each cycle, wraps at k-1)
/// and the k one-hot time indicators. Signals are prefixed with `prefix`.
TimeBase build_time_base(netlist::Netlist& nl, std::size_t k,
                         const std::string& prefix);

}  // namespace cl::core
