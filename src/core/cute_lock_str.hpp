// Cute-Lock-Str: the paper's netlist-level structural multi-key lock
// (paper §III-C, Figs. 2-3).
//
// Each locked flip-flop's D pin is driven through a MUX tree synchronized to
// a modulo-k time-base counter:
//
//  * Layer 1 (one slot per counter time t): verifies the ki-bit key port
//    against the time-t key K[t]. On a match the slot passes the FF's true
//    next-state cone; on a mismatch it passes *repurposed wrongful hardware*
//    — the existing next-state cone of another flip-flop, selected among the
//    available cones by the low key bits (the paper's "2^ki - 1 wrongful
//    hardware configurations", realized over the cones the circuit actually
//    has; no new decoy logic is synthesized, which is what buys removal
//    resistance).
//  * Layers 2..m (m = log2(k)+1): counter-driven 2:1 MUXes; each select is
//    the OR of the time indicators of one branch, exactly as in Fig. 3.
//  * Layer m feeds the FF.
//
// The correct key value therefore changes every clock cycle with period k:
// key_schedule[t % k] = K[t]. A static key — the assumption every
// oracle-guided attack formulation makes — satisfies at most one counter
// phase and corrupts the state machine in the others.
#pragma once

#include "lock/lock_result.hpp"
#include "util/rng.hpp"

namespace cl::core {

struct StrOptions {
  std::size_t num_keys = 4;    // k: counter period / number of key values
  std::size_t key_bits = 4;    // ki: width of the shared key port
  std::size_t locked_ffs = 1;  // how many flip-flops receive MUX trees
  std::uint64_t seed = 1;      // determinism
  /// Validation mode (§IV-A): use the same key value in every slot, reducing
  /// the scheme to a single-key lock that SAT attacks are expected to break.
  bool single_key_reduction = false;
  /// When non-empty, use exactly these key values (size must equal num_keys;
  /// each value must fit in key_bits). Used to reproduce the paper's
  /// Table II configuration (s27 with keys 1, 3, 2, 0).
  std::vector<std::uint64_t> explicit_keys;
};

/// Apply Cute-Lock-Str. Throws std::invalid_argument when the circuit has no
/// flip-flops or the options are inconsistent.
lock::LockResult cute_lock_str(const netlist::Netlist& nl,
                               const StrOptions& options);

}  // namespace cl::core
