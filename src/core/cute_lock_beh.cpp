#include "core/cute_lock_beh.hpp"

#include <sstream>
#include <stdexcept>

#include "core/counter.hpp"
#include "logic/sop_builder.hpp"

namespace cl::core {

using netlist::DffInit;
using netlist::Netlist;
using netlist::SignalId;

BehLock::BehLock(fsm::Stg original, const BehOptions& options)
    : original_(std::move(original)), key_bits_(options.key_bits) {
  if (options.num_keys < 2) {
    throw std::invalid_argument("cute_lock_beh: need k >= 2 keys");
  }
  if (options.key_bits < 1 || options.key_bits > 64) {
    throw std::invalid_argument("cute_lock_beh: key_bits out of [1,64]");
  }
  original_.check();
  util::Rng rng(options.seed);
  const std::uint64_t mask =
      (key_bits_ == 64) ? ~0ULL : ((1ULL << key_bits_) - 1);
  if (options.single_key_reduction) {
    keys_.assign(options.num_keys, rng.next_u64() & mask);
  } else {
    for (std::size_t t = 0; t < options.num_keys; ++t) {
      keys_.push_back(rng.next_u64() & mask);
    }
    for (std::size_t t = 1; mask > 0 && t < keys_.size(); ++t) {
      if (keys_[t] == keys_[t - 1]) keys_[t] = (keys_[t] + 1) & mask;
    }
  }
  // Wrongful STG: for every (state, counter time) a pseudo-random redirect.
  // The redirect is biased away from the state itself so that a wrong key
  // visibly derails the machine.
  wrongful_.resize(static_cast<std::size_t>(original_.num_states()));
  for (int s = 0; s < original_.num_states(); ++s) {
    for (std::size_t t = 0; t < options.num_keys; ++t) {
      int target = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(original_.num_states())));
      if (target == s && original_.num_states() > 1) {
        target = (target + 1) % original_.num_states();
      }
      wrongful_[static_cast<std::size_t>(s)].push_back(target);
    }
  }
}

int BehLock::wrongful_target(int state, std::size_t time) const {
  return wrongful_.at(static_cast<std::size_t>(state)).at(time % keys_.size());
}

fsm::Stg::StepResult BehLock::step(int state, std::size_t time,
                                   std::uint64_t key,
                                   std::uint32_t input) const {
  const fsm::Stg::StepResult correct = original_.step(state, input);
  if (key == keys_[time % keys_.size()]) return correct;
  // Wrong key: redirected next state; the Mealy output logic is untouched.
  return {wrongful_target(state, time), correct.output};
}

std::vector<fsm::Stg::StepResult> BehLock::run(
    const std::vector<std::uint32_t>& inputs,
    const std::vector<std::uint64_t>& key_values) const {
  if (inputs.size() != key_values.size()) {
    throw std::invalid_argument("BehLock::run: length mismatch");
  }
  std::vector<fsm::Stg::StepResult> out;
  out.reserve(inputs.size());
  int state = original_.initial();
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    const auto r = step(state, t, key_values[t], inputs[t]);
    out.push_back(r);
    state = r.next_state;
  }
  return out;
}

lock::LockResult BehLock::synthesize(fsm::SynthStyle style,
                                     const std::string& name) const {
  lock::LockResult result{Netlist(name), {}, {}, "cute_lock_beh"};
  Netlist& nl = result.locked;
  const int sb = fsm::state_bits(original_);

  std::vector<SignalId> inputs;
  for (int i = 0; i < original_.num_inputs(); ++i) {
    inputs.push_back(nl.add_input("x" + std::to_string(i)));
  }
  std::vector<SignalId> key_port;
  for (std::size_t i = 0; i < key_bits_; ++i) {
    key_port.push_back(nl.add_key_input("keyinput" + std::to_string(i)));
  }
  std::vector<SignalId> state;
  for (int j = 0; j < sb; ++j) {
    const bool one = (static_cast<std::uint64_t>(original_.initial()) >> j) & 1ULL;
    state.push_back(nl.add_dff(netlist::k_no_signal,
                               one ? DffInit::One : DffInit::Zero,
                               "state" + std::to_string(j)));
  }

  // Original next-state and output logic (outputs stay untouched).
  const fsm::TransitionLogic tl =
      fsm::build_transition_logic(nl, original_, state, inputs, style, "f");

  // Time base and per-time key comparators; key_ok = key matches the key of
  // the *current* counter slot.
  const TimeBase tb = build_time_base(nl, keys_.size(), "clb");
  std::vector<SignalId> ok_terms;
  for (std::size_t t = 0; t < keys_.size(); ++t) {
    const SignalId eq = logic::build_equals_const(
        nl, key_port, keys_[t], "clb_k" + std::to_string(t));
    ok_terms.push_back(
        nl.add_and(tb.is_time[t], eq, nl.fresh_name("clb_ok")));
  }
  const SignalId key_ok = logic::build_or_tree(nl, ok_terms, "clb_keyok");

  // Wrongful next-state logic: target depends on (state, counter time).
  // Bit j of the wrongful target, as a SOP over state-decoder AND
  // time-indicator terms.
  std::vector<SignalId> state_eq(static_cast<std::size_t>(original_.num_states()));
  for (int s = 0; s < original_.num_states(); ++s) {
    state_eq[static_cast<std::size_t>(s)] = logic::build_equals_const(
        nl, state, static_cast<std::uint64_t>(s), "clb_st" + std::to_string(s));
  }
  std::vector<SignalId> wrong_bits;
  for (int j = 0; j < sb; ++j) {
    std::vector<SignalId> terms;
    for (int s = 0; s < original_.num_states(); ++s) {
      for (std::size_t t = 0; t < keys_.size(); ++t) {
        const int target = wrongful_[static_cast<std::size_t>(s)][t];
        if ((static_cast<std::uint64_t>(target) >> j) & 1ULL) {
          terms.push_back(nl.add_and(state_eq[static_cast<std::size_t>(s)],
                                     tb.is_time[t],
                                     nl.fresh_name("clb_wt")));
        }
      }
    }
    wrong_bits.push_back(
        terms.empty()
            ? nl.add_const(false, nl.fresh_name("clb_wz"))
            : (terms.size() == 1 ? terms[0]
                                 : logic::build_or_tree(nl, terms, "clb_w")));
  }

  // State update: key_ok ? original : wrongful (the paper's MUX realization).
  for (int j = 0; j < sb; ++j) {
    const SignalId d =
        nl.add_mux(key_ok, wrong_bits[static_cast<std::size_t>(j)],
                   tl.next_state[static_cast<std::size_t>(j)],
                   nl.fresh_name("clb_d" + std::to_string(j)));
    nl.set_dff_input(state[static_cast<std::size_t>(j)], d);
  }
  for (int o = 0; o < original_.num_outputs(); ++o) {
    const SignalId out = nl.add_gate(netlist::GateType::Buf,
                                     {tl.outputs[static_cast<std::size_t>(o)]},
                                     "out" + std::to_string(o));
    nl.add_output(out);
  }

  for (std::uint64_t v : keys_) {
    result.key_schedule.push_back(
        sim::u64_to_bits(v, key_bits_));
  }
  nl.check();
  return result;
}

std::string BehLock::behavioral_verilog(const std::string& module_name) const {
  const int sb = fsm::state_bits(original_);
  const int cb = counter_bits(keys_.size());
  std::ostringstream v;
  v << "// Cute-Lock-Beh behavioral RTL — generated by cutelock\n";
  v << "module " << module_name << " (\n";
  v << "  input clk, input rst,\n";
  v << "  input [" << original_.num_inputs() - 1 << ":0] x,\n";
  v << "  input [" << key_bits_ - 1 << ":0] key,\n";
  v << "  output reg [" << original_.num_outputs() - 1 << ":0] y\n);\n";
  v << "  reg [" << sb - 1 << ":0] state;\n";
  v << "  reg [" << cb - 1 << ":0] cnt;\n";
  // Key-of-the-cycle check.
  v << "  wire key_ok =\n";
  for (std::size_t t = 0; t < keys_.size(); ++t) {
    v << "    (cnt == " << cb << "'d" << t << " && key == " << key_bits_
      << "'d" << keys_[t] << ")" << (t + 1 < keys_.size() ? " ||\n" : ";\n");
  }
  v << "  always @(posedge clk) begin\n";
  v << "    if (rst) begin state <= " << sb << "'d" << original_.initial()
    << "; cnt <= 0; end\n";
  v << "    else begin\n";
  v << "      cnt <= (cnt == " << cb << "'d" << keys_.size() - 1
    << ") ? 0 : cnt + 1;\n";
  v << "      if (key_ok) begin\n";
  v << "        case (state)\n";
  for (int s = 0; s < original_.num_states(); ++s) {
    v << "          " << sb << "'d" << s << ": begin\n";
    v << "            casez (x)\n";
    for (const fsm::Transition& t : original_.transitions_from(s)) {
      std::string pat(static_cast<std::size_t>(original_.num_inputs()), '?');
      for (int i = 0; i < original_.num_inputs(); ++i) {
        if ((t.when.mask >> i) & 1u) {
          // Verilog vector literal is MSB-first.
          pat[static_cast<std::size_t>(original_.num_inputs() - 1 - i)] =
              ((t.when.value >> i) & 1u) ? '1' : '0';
        }
      }
      v << "              " << original_.num_inputs() << "'b" << pat
        << ": state <= " << sb << "'d" << t.to << ";\n";
    }
    v << "              default: state <= state;\n";
    v << "            endcase\n          end\n";
  }
  v << "          default: state <= state;\n";
  v << "        endcase\n";
  v << "      end else begin\n";
  v << "        // Wrongful STG (paper Fig. 1, part 3)\n";
  v << "        case (state)\n";
  for (int s = 0; s < original_.num_states(); ++s) {
    v << "          " << sb << "'d" << s << ": ";
    if (keys_.size() == 1) {
      v << "state <= " << sb << "'d" << wrongful_[static_cast<std::size_t>(s)][0]
        << ";\n";
    } else {
      v << "case (cnt)\n";
      for (std::size_t t = 0; t < keys_.size(); ++t) {
        v << "            " << cb << "'d" << t << ": state <= " << sb << "'d"
          << wrongful_[static_cast<std::size_t>(s)][t] << ";\n";
      }
      v << "            default: state <= state;\n          endcase\n";
    }
  }
  v << "          default: state <= state;\n";
  v << "        endcase\n";
  v << "      end\n    end\n  end\n";
  // Mealy outputs (combinational, untouched by the lock).
  v << "  always @(*) begin\n    y = 0;\n    case (state)\n";
  for (int s = 0; s < original_.num_states(); ++s) {
    v << "      " << sb << "'d" << s << ": begin\n        casez (x)\n";
    for (const fsm::Transition& t : original_.transitions_from(s)) {
      std::string pat(static_cast<std::size_t>(original_.num_inputs()), '?');
      for (int i = 0; i < original_.num_inputs(); ++i) {
        if ((t.when.mask >> i) & 1u) {
          pat[static_cast<std::size_t>(original_.num_inputs() - 1 - i)] =
              ((t.when.value >> i) & 1u) ? '1' : '0';
        }
      }
      v << "          " << original_.num_inputs() << "'b" << pat << ": y = "
        << original_.num_outputs() << "'d" << t.output << ";\n";
    }
    v << "          default: y = 0;\n        endcase\n      end\n";
  }
  v << "      default: y = 0;\n    endcase\n  end\nendmodule\n";
  return v.str();
}

}  // namespace cl::core
