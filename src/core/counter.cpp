#include "core/counter.hpp"

#include <stdexcept>

#include "logic/sop_builder.hpp"

namespace cl::core {

using netlist::DffInit;
using netlist::Netlist;
using netlist::SignalId;

int counter_bits(std::size_t k) {
  if (k < 2) throw std::invalid_argument("time base needs k >= 2");
  int bits = 1;
  while ((1ULL << bits) < k) ++bits;
  return bits;
}

TimeBase build_time_base(Netlist& nl, std::size_t k, const std::string& prefix) {
  const int bits = counter_bits(k);
  TimeBase tb;
  for (int i = 0; i < bits; ++i) {
    tb.counter_ffs.push_back(nl.add_dff(netlist::k_no_signal, DffInit::Zero,
                                        prefix + "_cnt" + std::to_string(i)));
  }
  // Increment with ripple carry; wrap to 0 after k-1.
  const SignalId wrap = logic::build_equals_const(
      nl, tb.counter_ffs, static_cast<std::uint64_t>(k - 1), prefix + "_wrap");
  const SignalId not_wrap = nl.add_not(wrap, nl.fresh_name(prefix + "_nw"));
  SignalId carry = netlist::k_no_signal;
  for (int i = 0; i < bits; ++i) {
    const SignalId q = tb.counter_ffs[static_cast<std::size_t>(i)];
    SignalId inc;  // q XOR carry-in (carry-in of bit 0 is 1)
    if (i == 0) {
      inc = nl.add_not(q, nl.fresh_name(prefix + "_inc0"));
      carry = q;
    } else {
      inc = nl.add_xor(q, carry, nl.fresh_name(prefix + "_inc" + std::to_string(i)));
      carry = nl.add_and(q, carry, nl.fresh_name(prefix + "_car" + std::to_string(i)));
    }
    // Gate with the wrap: next = inc & ~wrap.
    const SignalId next =
        nl.add_and(inc, not_wrap, nl.fresh_name(prefix + "_nx" + std::to_string(i)));
    nl.set_dff_input(q, next);
  }
  for (std::size_t t = 0; t < k; ++t) {
    tb.is_time.push_back(logic::build_equals_const(
        nl, tb.counter_ffs, t, prefix + "_is" + std::to_string(t)));
  }
  return tb;
}

}  // namespace cl::core
