// Cute-Lock-Beh: the paper's RTL-level behavioral multi-key lock
// (paper §III-B, Fig. 1).
//
// The STG is augmented with a modulo-k counter and a ki-bit key port. On
// every cycle the key value K[counter] must be present: the machine then
// takes its original transition. Under any other key value it takes a
// *wrongful transition* — a pseudo-random redirect fixed at lock time (the
// paper's "Wrongful STG"). Only the flip-flop update logic changes; the
// Mealy output logic is untouched, exactly as the paper describes ("the only
// additions are a counter and the wrongful state transitions ... added to
// the FF logic").
#pragma once

#include <string>
#include <vector>

#include "fsm/stg.hpp"
#include "fsm/synth.hpp"
#include "lock/lock_result.hpp"
#include "util/rng.hpp"

namespace cl::core {

struct BehOptions {
  std::size_t num_keys = 4;   // k
  std::size_t key_bits = 4;   // ki
  std::uint64_t seed = 1;
  bool single_key_reduction = false;  // §IV-A sanity mode
};

/// A behaviorally locked FSM: the original machine, the key schedule, and
/// the wrongful redirect table (indexed [state][counter_time]).
class BehLock {
 public:
  BehLock(fsm::Stg original, const BehOptions& options);

  const fsm::Stg& original() const { return original_; }
  std::size_t num_keys() const { return keys_.size(); }
  std::size_t key_bits() const { return key_bits_; }
  const std::vector<std::uint64_t>& keys() const { return keys_; }
  int wrongful_target(int state, std::size_t time) const;

  /// Reference semantics of the locked machine (used by tests and by the
  /// validation table): one step given the current state, counter time, the
  /// applied key value and the input minterm.
  fsm::Stg::StepResult step(int state, std::size_t time, std::uint64_t key,
                            std::uint32_t input) const;

  /// Run from reset with explicit per-cycle key values.
  std::vector<fsm::Stg::StepResult> run(
      const std::vector<std::uint32_t>& inputs,
      const std::vector<std::uint64_t>& key_values) const;

  /// Gate-level implementation: synthesizes the original next-state logic,
  /// the wrongful redirect logic, the counter, and the key comparators, and
  /// MUXes the state updates (the paper implements Beh "using MUXs"). The
  /// result's key_schedule holds K[0..k-1] (periodic).
  lock::LockResult synthesize(fsm::SynthStyle style,
                              const std::string& name) const;

  /// Behavioral (RTL) Verilog of the locked machine: a case-statement FSM
  /// with counter and key checks — what the paper feeds to Vivado.
  std::string behavioral_verilog(const std::string& module_name) const;

 private:
  fsm::Stg original_;
  std::size_t key_bits_;
  std::vector<std::uint64_t> keys_;
  std::vector<std::vector<int>> wrongful_;  // [state][time]
};

}  // namespace cl::core
