#include "core/cute_lock_str.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "core/counter.hpp"
#include "logic/sop_builder.hpp"
#include "netlist/topo.hpp"
#include "sim/bit_sim.hpp"

namespace cl::core {

using netlist::Netlist;
using netlist::SignalId;

namespace {

/// Layer-1 slot: key verification for one counter time.
/// Returns correct_cone when key == expected, else one of the wrongful cones
/// (chosen by the low key bits, so different wrong keys exercise different
/// repurposed hardware).
SignalId build_layer1_slot(Netlist& nl, const std::vector<SignalId>& key_port,
                           std::uint64_t expected, SignalId correct_cone,
                           const std::vector<SignalId>& wrongful,
                           const std::string& prefix) {
  const SignalId eq =
      logic::build_equals_const(nl, key_port, expected, prefix + "_eq");
  // Wrongful value: MUX tree over the wrongful cones indexed by the low key
  // bits (wrap-around when fewer cones than key codes).
  std::vector<SignalId> pool = wrongful;
  // Pad the pool to a power of two by cycling.
  std::size_t width = 1;
  while (width < pool.size()) width <<= 1;
  for (std::size_t i = pool.size(); i < width; ++i) pool.push_back(wrongful[i % wrongful.size()]);
  std::size_t sel_bit = 0;
  while (pool.size() > 1) {
    std::vector<SignalId> next;
    const SignalId sel = key_port[sel_bit % key_port.size()];
    for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
      next.push_back(nl.add_mux(sel, pool[i], pool[i + 1],
                                nl.fresh_name(prefix + "_w")));
    }
    if (pool.size() % 2 != 0) next.push_back(pool.back());
    pool = std::move(next);
    ++sel_bit;
  }
  const SignalId wrong_val = pool[0];
  // eq ? correct : wrong.
  return nl.add_mux(eq, wrong_val, correct_cone, nl.fresh_name(prefix + "_s"));
}

/// Layers 2..m: recursive counter-driven combination of the k slot outputs.
/// The select of each 2:1 MUX is the OR of the time indicators of its upper
/// branch (paper Fig. 3: "the check is performed by OR-ing all the counter
/// times in the previous MUXs").
SignalId build_upper_layers(Netlist& nl, const std::vector<SignalId>& slots,
                            const std::vector<SignalId>& is_time,
                            std::size_t lo, std::size_t hi,
                            const std::string& prefix) {
  if (hi - lo == 1) return slots[lo];
  const std::size_t mid = lo + (hi - lo + 1) / 2;
  const SignalId left = build_upper_layers(nl, slots, is_time, lo, mid, prefix);
  const SignalId right = build_upper_layers(nl, slots, is_time, mid, hi, prefix);
  std::vector<SignalId> upper_indicators(is_time.begin() + static_cast<long>(mid),
                                         is_time.begin() + static_cast<long>(hi));
  const SignalId sel =
      upper_indicators.size() == 1
          ? upper_indicators[0]
          : logic::build_or_tree(nl, upper_indicators, prefix + "_or");
  return nl.add_mux(sel, left, right, nl.fresh_name(prefix + "_m"));
}

}  // namespace

lock::LockResult cute_lock_str(const Netlist& nl, const StrOptions& options) {
  if (options.num_keys < 2) {
    throw std::invalid_argument("cute_lock_str: need k >= 2 keys");
  }
  if (options.key_bits < 1 || options.key_bits > 64) {
    throw std::invalid_argument("cute_lock_str: key_bits out of [1,64]");
  }
  if (nl.dffs().empty()) {
    throw std::invalid_argument("cute_lock_str: circuit has no flip-flops");
  }
  if (options.locked_ffs < 1) {
    throw std::invalid_argument("cute_lock_str: need >= 1 locked FF");
  }

  lock::LockResult result{nl.clone(nl.name() + "_cutelock"),
                          {},
                          {},
                          "cute_lock_str"};
  Netlist& out = result.locked;
  util::Rng rng(options.seed);

  // Key schedule: k values of ki bits. In single-key-reduction mode every
  // slot expects the same value (the §IV-A sanity configuration).
  std::vector<std::uint64_t> key_values;
  const std::uint64_t key_mask = (options.key_bits == 64)
                                     ? ~0ULL
                                     : ((1ULL << options.key_bits) - 1);
  if (!options.explicit_keys.empty()) {
    if (options.explicit_keys.size() != options.num_keys) {
      throw std::invalid_argument("cute_lock_str: explicit_keys size != k");
    }
    for (std::uint64_t v : options.explicit_keys) {
      if ((v & ~key_mask) != 0) {
        throw std::invalid_argument("cute_lock_str: explicit key too wide");
      }
    }
    key_values = options.explicit_keys;
  } else if (options.single_key_reduction) {
    const std::uint64_t v = rng.next_u64() & key_mask;
    key_values.assign(options.num_keys, v);
  } else {
    for (std::size_t t = 0; t < options.num_keys; ++t) {
      key_values.push_back(rng.next_u64() & key_mask);
    }
    // Adjacent slots expecting identical values weaken the time dependence;
    // nudge duplicates apart when the key space allows it.
    if (key_mask > 0) {
      for (std::size_t t = 1; t < key_values.size(); ++t) {
        if (key_values[t] == key_values[t - 1]) {
          key_values[t] = (key_values[t] + 1) & key_mask;
        }
      }
    }
  }

  // Shared key port.
  std::vector<SignalId> key_port;
  for (std::size_t i = 0; i < options.key_bits; ++i) {
    key_port.push_back(out.add_key_input("keyinput" + std::to_string(i)));
  }

  // Time base.
  const TimeBase tb = build_time_base(out, options.num_keys, "cl");

  // Choose locked FFs and capture every FF's original next-state cone root
  // *before* any rewiring: these signals are the repurposable hardware.
  std::vector<SignalId> functional_ffs = nl.dffs();  // same ids in the clone
  std::vector<SignalId> original_d;
  original_d.reserve(functional_ffs.size());
  for (SignalId q : functional_ffs) original_d.push_back(out.dff_input(q));

  // Profile how often each pair of next-state cones actually disagrees on
  // reachable behaviour (64-lane random simulation of the original).
  // Repurposed hardware that happens to compute the same function would
  // make a wrong key silently correct — the selection below only accepts
  // cones with a real behavioural difference.
  std::vector<std::vector<std::uint64_t>> d_traces(
      original_d.size());  // [ff][cycle] 64-lane words
  {
    sim::BitSim profiler(nl);
    util::Rng sim_rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
    const std::size_t profile_cycles = 96;
    for (std::size_t c = 0; c < profile_cycles; ++c) {
      for (SignalId i : nl.inputs()) profiler.set(i, sim_rng.next_u64());
      profiler.eval();
      for (std::size_t f = 0; f < original_d.size(); ++f) {
        d_traces[f].push_back(profiler.get(original_d[f]));
      }
      profiler.step();
    }
  }
  const auto differs_enough = [&](std::size_t a, std::size_t b) {
    std::uint64_t diff_bits = 0;
    for (std::size_t c = 0; c < d_traces[a].size(); ++c) {
      diff_bits += static_cast<std::uint64_t>(
          std::popcount(d_traces[a][c] ^ d_traces[b][c]));
    }
    // At least ~3% of sampled evaluations must disagree.
    return diff_bits * 32 >= d_traces[a].size() * 64;
  };

  // Lock only flip-flops whose corruption can propagate to a primary output
  // (fixpoint of reverse reachability through combinational logic and
  // registers): corrupting an unobservable FF would leave wrong keys
  // functionally correct.
  std::vector<bool> observable(out.size(), false);
  {
    for (;;) {
      std::vector<SignalId> roots(nl.outputs().begin(), nl.outputs().end());
      for (SignalId q : functional_ffs) {
        if (observable[q]) roots.push_back(out.dff_input(q));
      }
      const std::vector<bool> cone = netlist::comb_fanin_cone(out, roots);
      bool changed = false;
      for (SignalId s = 0; s < out.size(); ++s) {
        if (cone[s] && !observable[s]) {
          observable[s] = true;
          changed = true;
        }
      }
      if (!changed) break;
    }
  }
  // Observability distance: how many clock cycles a corrupted FF value
  // needs before it can reach a primary output. Locking the closest FFs
  // makes wrong-key corruption visible fast (deeply buried FFs could hide
  // corruption beyond any bounded check — the attacker would then hold a
  // key that is "equivalent enough", which defeats the purpose).
  std::vector<std::size_t> distance(functional_ffs.size(), SIZE_MAX);
  {
    std::vector<SignalId> roots(nl.outputs().begin(), nl.outputs().end());
    for (std::size_t level = 0; !roots.empty(); ++level) {
      const std::vector<bool> cone = netlist::comb_fanin_cone(out, roots);
      roots.clear();
      for (std::size_t i = 0; i < functional_ffs.size(); ++i) {
        if (distance[i] == SIZE_MAX && cone[functional_ffs[i]]) {
          distance[i] = level;
          roots.push_back(out.dff_input(functional_ffs[i]));
        }
      }
    }
  }
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < functional_ffs.size(); ++i) {
    if (observable[functional_ffs[i]]) candidates.push_back(i);
  }
  if (candidates.empty()) {  // degenerate circuit: fall back to all FFs
    for (std::size_t i = 0; i < functional_ffs.size(); ++i) candidates.push_back(i);
  }
  rng.shuffle(candidates);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](std::size_t a, std::size_t b) {
                     return distance[a] < distance[b];
                   });
  const std::size_t count = std::min(options.locked_ffs, candidates.size());
  candidates.resize(count);

  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    const std::size_t fi = candidates[ci];
    const SignalId ff = functional_ffs[fi];
    const SignalId correct = original_d[fi];
    const std::string prefix = "cl_ff" + std::to_string(ci);

    // Wrongful hardware pool: other FFs' original next-state cones that
    // *behaviourally* differ from the correct cone (identical-function
    // hardware would make wrong keys silently correct). Falls back to the
    // inverted own cone — still repurposed, and guaranteed to differ.
    std::vector<SignalId> wrongful;
    for (std::size_t j = 0; j < original_d.size(); ++j) {
      if (j != fi && original_d[j] != correct && differs_enough(fi, j)) {
        wrongful.push_back(original_d[j]);
      }
    }
    if (wrongful.size() > 4) {
      rng.shuffle(wrongful);
      wrongful.resize(4);
    }
    if (wrongful.empty()) {
      wrongful.push_back(out.add_not(correct, out.fresh_name(prefix + "_inv")));
    }

    // Layer 1: one key-checked slot per counter time.
    std::vector<SignalId> slots;
    for (std::size_t t = 0; t < options.num_keys; ++t) {
      slots.push_back(build_layer1_slot(out, key_port, key_values[t], correct,
                                        wrongful,
                                        prefix + "_t" + std::to_string(t)));
    }
    // Layers 2..m: counter-selected combination; layer m drives the FF.
    const SignalId root = build_upper_layers(out, slots, tb.is_time, 0,
                                             options.num_keys, prefix);
    out.set_dff_input(ff, root);
  }

  for (std::uint64_t v : key_values) {
    result.key_schedule.push_back(sim::u64_to_bits(v, options.key_bits));
  }
  out.check();
  return result;
}

}  // namespace cl::core
