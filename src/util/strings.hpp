// Small string helpers shared by the netlist / FSM file parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cl::util {

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any character in `delims`, dropping empty fields.
std::vector<std::string> split(std::string_view s, std::string_view delims = " \t");

/// Case-insensitive equality (ASCII).
bool iequals(std::string_view a, std::string_view b);

/// Lower-case copy (ASCII).
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Format an unsigned value as a zero-padded binary string of `width` bits,
/// most significant bit first.
std::string to_binary(std::uint64_t value, int width);

}  // namespace cl::util
