#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace cl::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace cl::util
