// FNV-1a hashing, shared by every module that needs a cheap deterministic
// content hash (benchgen name seeds, SAT clause dedup, observation-bank
// identities). One copy of the offset/prime constants and mix loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cl::util {

inline constexpr std::uint64_t k_fnv_offset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t k_fnv_prime = 0x100000001b3ULL;

/// Mix one 64-bit value into `h` (whole-word FNV-1a step).
inline void fnv1a_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= k_fnv_prime;
}

/// Mix `n` raw bytes into `h`.
inline void fnv1a_mix_bytes(std::uint64_t& h, const void* data,
                            std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= k_fnv_prime;
  }
}

/// One-shot hash of a byte string.
inline std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = k_fnv_offset;
  fnv1a_mix_bytes(h, s.data(), s.size());
  return h;
}

}  // namespace cl::util
