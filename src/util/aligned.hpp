// Cache-line-aligned allocation for the simulation word buffers.
//
// The compiled engine's signal storage is SoA (signal s owns words
// [s*lanes, (s+1)*lanes)), and the SIMD kernels stream 256/512-bit loads
// over those blocks. A 64-byte-aligned base keeps every lane block on as few
// cache lines as possible and lets full-width vectors land on aligned
// addresses whenever lanes is a multiple of the vector width. The kernels
// themselves use unaligned load/store instructions, so alignment is a
// performance property here, never a correctness requirement.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace cl::util {

template <class T, std::size_t Align = 64>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// The simulation buffer type: a std::vector whose data() is 64-byte
/// aligned.
template <class T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

}  // namespace cl::util
