#include "util/thread_pool.hpp"

#include <algorithm>

namespace cl::util {

std::size_t ThreadPool::default_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)]() mutable {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !first_error_) first_error_ = error;
    if (--pending_ == 0) done_cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace cl::util
