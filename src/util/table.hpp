// Plain-text table rendering for the benchmark harnesses. The bench binaries
// print the same rows the paper's tables report; this keeps the formatting in
// one place.
#pragma once

#include <string>
#include <vector>

namespace cl::util {

/// Column-aligned ASCII table with a header row and a rule under it.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with two-space column gaps.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cl::util
