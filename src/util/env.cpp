#include "util/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/thread_pool.hpp"

namespace cl::util {

bool parse_double_strict(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  // Reject "inf"/"nan" too: a non-finite budget fed into
  // Solver::set_time_budget would overflow the duration_cast.
  if (end == text || *end != '\0' || errno == ERANGE || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

bool parse_size_strict(const char* text, std::size_t* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < 0) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  if (env[0] != '\0' && env[1] == '\0') {
    if (env[0] == '1') return true;
    if (env[0] == '0') return false;
  }
  // Like every other CUTELOCK_* parser: "true", "yes", trailing junk etc.
  // warn instead of silently meaning "off".
  std::fprintf(stderr,
               "warning: ignoring invalid %s=\"%s\" (want 0 or 1); "
               "treating as off\n",
               name, env);
  return false;
}

double env_double_or(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  double v = 0.0;
  if (!parse_double_strict(env, &v) || v <= 0) {
    std::fprintf(stderr,
                 "warning: ignoring invalid %s=\"%s\" (want a positive "
                 "number); using %g\n",
                 name, env, fallback);
    return fallback;
  }
  return v;
}

std::size_t env_size_or(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  std::size_t v = 0;
  if (!parse_size_strict(env, &v) || v == 0) {
    std::fprintf(stderr,
                 "warning: ignoring invalid %s=\"%s\" (want a positive "
                 "integer); using %zu\n",
                 name, env, fallback);
    return fallback;
  }
  return v;
}

std::size_t jobs_from_env() {
  return env_size_or("CUTELOCK_JOBS", ThreadPool::default_thread_count());
}

std::size_t sat_portfolio_from_env() {
  return env_size_or("CUTELOCK_SAT_PORTFOLIO", 1);
}

bool sat_share_from_env() {
  const char* env = std::getenv("CUTELOCK_SAT_SHARE");
  if (env == nullptr) return true;
  if (env[0] != '\0' && env[1] == '\0') {
    if (env[0] == '0') return false;
    if (env[0] == '1') return true;
  }
  std::fprintf(stderr,
               "warning: ignoring invalid CUTELOCK_SAT_SHARE=\"%s\" (want 0 "
               "or 1); sharing stays on\n",
               env);
  return true;
}

bool obs_bank_from_env() { return env_flag("CUTELOCK_OBS_BANK"); }

std::string obs_bank_path_from_env() {
  const char* env = std::getenv("CUTELOCK_OBS_BANK_PATH");
  return env == nullptr ? std::string() : std::string(env);
}

bool key_hints_from_env() {
  // Stable mode wins: hint injection changes solver trajectories, and the
  // stable tables promise byte-identical output at any knob setting.
  return env_flag("CUTELOCK_KEY_HINTS") && !env_flag("CUTELOCK_BENCH_STABLE");
}

bool sat_preprocess_from_env() {
  // Stable mode wins, exactly like key hints: preprocessing changes solver
  // trajectories, and the stable tables promise byte-identical output.
  return env_flag("CUTELOCK_SAT_PREPROCESS") &&
         !env_flag("CUTELOCK_BENCH_STABLE");
}

double sat_gc_frac_from_env() {
  static const double cached = [] {
    const double v = env_double_or("CUTELOCK_SAT_GC_FRAC", 0.25);
    if (v > 1.0) {
      std::fprintf(stderr,
                   "warning: CUTELOCK_SAT_GC_FRAC=%g > 1 would disable arena "
                   "GC; using 0.25\n",
                   v);
      return 0.25;
    }
    return v;
  }();
  return cached;
}

}  // namespace cl::util
