#include "util/cpu.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cl::util {

const char* sim_isa_name(SimIsa isa) {
  switch (isa) {
    case SimIsa::Generic: return "generic";
    case SimIsa::Avx2: return "avx2";
    case SimIsa::Avx512: return "avx512";
  }
  return "?";
}

bool cpu_supports(SimIsa isa) {
  if (isa == SimIsa::Generic) return true;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  if (isa == SimIsa::Avx2) return __builtin_cpu_supports("avx2");
  // The 512-bit kernels use only foundation ops (loads, stores, bitwise
  // logic, vpternlog), so AVX-512F is the whole requirement.
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

SimIsa best_cpu_sim_isa() {
  if (cpu_supports(SimIsa::Avx512)) return SimIsa::Avx512;
  if (cpu_supports(SimIsa::Avx2)) return SimIsa::Avx2;
  return SimIsa::Generic;
}

bool sim_isa_from_env(SimIsa* out) {
  const char* env = std::getenv("CUTELOCK_SIM_ISA");
  if (env == nullptr) return false;
  if (std::strcmp(env, "generic") == 0) {
    *out = SimIsa::Generic;
    return true;
  }
  if (std::strcmp(env, "avx2") == 0) {
    *out = SimIsa::Avx2;
    return true;
  }
  if (std::strcmp(env, "avx512") == 0) {
    *out = SimIsa::Avx512;
    return true;
  }
  std::fprintf(stderr,
               "warning: ignoring invalid CUTELOCK_SIM_ISA=\"%s\" (want "
               "generic, avx2 or avx512); auto-detecting\n",
               env);
  return false;
}

}  // namespace cl::util
