#include "util/rng.hpp"

#include <stdexcept>

namespace cl::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_in: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t r = (span == 0) ? next_u64() : next_below(span);
  return lo + static_cast<std::int64_t>(r);
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  if (den == 0 || num > den) throw std::invalid_argument("Rng::chance: bad ratio");
  return next_below(den) < num;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() {
  return Rng(next_u64() ^ 0xa5a5a5a5a5a5a5a5ULL);
}

}  // namespace cl::util
