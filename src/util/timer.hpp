// Wall-clock timing with the paper's "XmY.ZZZs" formatting.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace cl::util {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Format seconds the way the paper's tables do, e.g. 385.446 -> "6m25.446s",
/// 24290.0 -> "6h44m50s".
inline std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 0) seconds = 0;
  const long total_ms = static_cast<long>(seconds * 1000.0 + 0.5);
  const long h = total_ms / 3'600'000;
  const long m = (total_ms / 60'000) % 60;
  const long s = (total_ms / 1000) % 60;
  const long ms = total_ms % 1000;
  if (h > 0) {
    std::snprintf(buf, sizeof buf, "%ldh%ldm%lds", h, m, s);
  } else if (m > 0) {
    std::snprintf(buf, sizeof buf, "%ldm%ld.%03lds", m, s, ms);
  } else {
    std::snprintf(buf, sizeof buf, "%ld.%03lds", s, ms);
  }
  return buf;
}

}  // namespace cl::util
