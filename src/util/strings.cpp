#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace cl::util {

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? s.size() : end;
    if (stop > start) out.emplace_back(s.substr(start, stop - start));
    start = stop + 1;
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
    return std::tolower(static_cast<unsigned char>(x)) ==
           std::tolower(static_cast<unsigned char>(y));
  });
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_binary(std::uint64_t value, int width) {
  std::string out(static_cast<std::size_t>(width), '0');
  for (int i = 0; i < width; ++i) {
    if ((value >> (width - 1 - i)) & 1ULL) out[static_cast<std::size_t>(i)] = '1';
  }
  return out;
}

}  // namespace cl::util
