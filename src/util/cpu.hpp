// Runtime ISA detection for the SIMD simulation kernels.
//
// The library is compiled for a portable baseline (-march is never raised
// globally), and the vector kernels live in dedicated translation units
// built with their own -m flags (src/sim/kernels_*.cpp). This helper is the
// single place that decides, once per process, which of those units the
// dispatcher may call: the CPU must report the extension at runtime AND the
// toolchain must have been able to build the unit with real intrinsics.
// CUTELOCK_SIM_ISA=generic|avx2|avx512 narrows the choice (never widens it:
// requesting an ISA the host lacks warns on stderr and falls back).
#pragma once

#include <cstdint>

namespace cl::util {

/// Instruction-set tiers of the simulation kernels, weakest first. The
/// ordering is meaningful: a host that supports a tier supports every tier
/// below it, so "best supported" is a simple max.
enum class SimIsa : std::uint8_t { Generic = 0, Avx2 = 1, Avx512 = 2 };

/// "generic" | "avx2" | "avx512".
const char* sim_isa_name(SimIsa isa);

/// True when the running CPU reports the extensions the tier's kernels use
/// (AVX2 for Avx2; AVX-512F for Avx512). Generic is always true. Says
/// nothing about whether the kernels were compiled in — sim::kernels owns
/// that half of the decision.
bool cpu_supports(SimIsa isa);

/// Strongest tier cpu_supports() accepts.
SimIsa best_cpu_sim_isa();

/// CUTELOCK_SIM_ISA parsed strictly ("generic" | "avx2" | "avx512"): true
/// and *out set when the variable holds a valid tier. Unset returns false
/// silently; anything else warns on stderr and returns false (the caller
/// falls back to auto-detection).
bool sim_isa_from_env(SimIsa* out);

}  // namespace cl::util
