// Fixed-size worker pool for the embarrassingly parallel bench/attack
// sweeps. Tasks are plain std::function<void()>; submitters own their result
// slots (each task writes only memory no other task touches). The pool
// captures the first exception a task throws and rethrows it from wait().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cl::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t threads = default_thread_count());

  /// Drains the queue (every submitted task runs), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Thread-safe; may be called from worker threads.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished, then rethrow the first
  /// exception any task raised (if one did).
  void wait();

  std::size_t size() const { return workers_.size(); }

  /// hardware_concurrency(), clamped to >= 1.
  static std::size_t default_thread_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a task or stop is available
  std::condition_variable idle_cv_;  // wait(): queue drained, nothing running
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Scoped join/error domain over a shared ThreadPool. Unlike
/// ThreadPool::wait() — which blocks until the *whole* pool is quiescent and
/// rethrows any client's error — a TaskGroup waits only for tasks submitted
/// through it and rethrows only its own first exception, so independent
/// clients sharing one pool (e.g. two sharded netlist evals) neither convoy
/// on each other's barriers nor steal each other's errors.
///
/// Never call wait() from a worker thread of the same pool: the waiting
/// thread would occupy the very slot its tasks need. The destructor joins
/// outstanding tasks (swallowing errors not collected via wait()).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue a task onto the underlying pool, tracked by this group.
  void submit(std::function<void()> task);

  /// Block until every task submitted through this group has finished, then
  /// rethrow the group's first exception (if any). The group is reusable
  /// afterwards.
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace cl::util
