// Fixed-size worker pool for the embarrassingly parallel bench/attack
// sweeps. Tasks are plain std::function<void()>; submitters own their result
// slots (each task writes only memory no other task touches). The pool
// captures the first exception a task throws and rethrows it from wait().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cl::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t threads = default_thread_count());

  /// Drains the queue (every submitted task runs), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Thread-safe; may be called from worker threads.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished, then rethrow the first
  /// exception any task raised (if one did).
  void wait();

  std::size_t size() const { return workers_.size(); }

  /// hardware_concurrency(), clamped to >= 1.
  static std::size_t default_thread_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a task or stop is available
  std::condition_variable idle_cv_;  // wait(): queue drained, nothing running
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace cl::util
