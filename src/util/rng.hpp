// Deterministic pseudo-random number generation for reproducible benchmarks.
//
// Every generator and locking transform in this project takes an explicit
// 64-bit seed so that all tables and figures regenerate byte-identically.
// The engine is xoshiro256** seeded through SplitMix64, which is the
// recommended seeding procedure from the xoshiro authors.
#pragma once

#include <cstdint>
#include <vector>

namespace cl::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Deterministic, fast, and independent of the C++
/// standard library's unspecified distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) with Lemire rejection; bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Bernoulli with probability num/den; requires 0 <= num <= den, den > 0.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Uniform double in [0, 1).
  double next_double();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element; requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

  /// Derive an independent child generator (for parallel structures).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace cl::util
