// Strict environment-variable parsing shared by the bench harnesses and the
// simulation engine. All parsers reject trailing junk (atof would silently
// read "2s" as 2) and warn on stderr when an invalid value is ignored.
#pragma once

#include <cstddef>
#include <string>

namespace cl::util {

/// Parse the whole string as a finite double. Returns false on junk,
/// trailing characters, range errors, or inf/nan.
bool parse_double_strict(const char* text, double* out);

/// Parse the whole string as a non-negative integer.
bool parse_size_strict(const char* text, std::size_t* out);

/// True iff the variable is set to exactly "1"; "0" and unset are false.
/// Anything else ("true", "yes", trailing junk) warns on stderr and is
/// treated as off.
bool env_flag(const char* name);

/// Value of `name` as a positive double, or `fallback` when unset. Invalid
/// values (junk, <= 0) warn on stderr and fall back.
double env_double_or(const char* name, double fallback);

/// Value of `name` as a positive integer, or `fallback` when unset. Invalid
/// values (junk, 0) warn on stderr and fall back.
std::size_t env_size_or(const char* name, std::size_t fallback);

/// Worker-thread count: CUTELOCK_JOBS, or hardware_concurrency when unset.
/// Always >= 1. Shared by bench::Runner, the sharded simulator pool, and
/// intra-attack parallelism (BBO screening).
std::size_t jobs_from_env();

/// Diversified CDCL workers racing each solver call: CUTELOCK_SAT_PORTFOLIO,
/// default 1 (portfolio off). Seeds AttackBudget::sat_workers; bench
/// harnesses force 1 under CUTELOCK_BENCH_STABLE=1.
std::size_t sat_portfolio_from_env();

/// Live clause sharing between portfolio workers: CUTELOCK_SAT_SHARE,
/// default on; "0" disables. Only meaningful when a race is actually running
/// (portfolio >= 2 workers), so it is trivially off under
/// CUTELOCK_BENCH_STABLE=1 (which forces the portfolio off).
bool sat_share_from_env();

/// Cross-attack oracle observation bank: CUTELOCK_OBS_BANK=1 enables,
/// default off. Deterministic output requires CUTELOCK_JOBS=1 (the bank's
/// content at each attack's start depends on job completion order).
bool obs_bank_from_env();

/// Observation-bank persistence file: CUTELOCK_OBS_BANK_PATH, empty when
/// unset. The serve daemon (and the CLI attack mode, when the bank is on)
/// loads banked oracle facts from this file at start and saves them back on
/// shutdown, so facts survive restarts and can be shipped between machines.
std::string obs_bank_path_from_env();

/// Structural key hints seeding the oracle-guided engine:
/// CUTELOCK_KEY_HINTS=1 makes OgEngine run analysis::infer_key_hints on the
/// locked netlist and install high-confidence bits as startup unit
/// assumptions. Default off, and forced off under CUTELOCK_BENCH_STABLE=1 so
/// the stable tables stay byte-identical.
bool key_hints_from_env();

/// SAT pre/inprocessing: CUTELOCK_SAT_PREPROCESS=1 makes the attacks run
/// bounded variable elimination before search and subsumption/vivification
/// at restart boundaries (seeds AttackBudget::sat_preprocess). Default off,
/// and forced off under CUTELOCK_BENCH_STABLE=1 so the stable tables stay
/// byte-identical.
bool sat_preprocess_from_env();

/// Arena GC trigger fraction: CUTELOCK_SAT_GC_FRAC, default 0.25; collect
/// when that fraction of the clause arena is wasted words. Values > 1 warn
/// and fall back (GC would effectively never run). Read once and cached —
/// every Solver construction consults it.
double sat_gc_frac_from_env();

}  // namespace cl::util
